"""File-level to disk-level preprocessing — and the reverse.

The paper's file-level traces "were preprocessed to convert file-level
accesses into disk-level operations, by associating a unique disk location
with each file" (section 4.1).  :class:`FileMapper` performs that
association: every (file, block-within-file) pair is bound to a device block
number on first touch, deletions release the binding, and released blocks
are recycled for later allocations.

Allocation is lazy and per-block rather than per-file because the traces do
not announce file sizes up front; a file's blocks are allocated in access
order, which for sequential access yields contiguous device blocks, matching
the "optimal disk layout" assumption the simulator makes about seeks (paper
section 4.2).

:class:`ExtentMapper` runs the mapping in the *other* direction for
imported disk-level traces (blktrace, SNIA block traces), which carry raw
device offsets and no file identity.  The paper's pipeline is file-level
throughout, so disk-level imports synthesise file ids with an extent
heuristic: a contiguous run of device blocks is one file, a run appended
immediately after an extent's tail grows that file (sequential streams
coalesce), and anything else starts a new file.  The synthesised layout is
deliberately conservative — it recovers exactly the structure the
simulator's same-file no-seek optimisation and the cleaner's per-file
locality can legitimately exploit, never more.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.errors import TraceError
from repro.traces.record import BlockOp, Operation, TraceRecord
from repro.traces.trace import Trace


class FileMapper:
    """Maps file-level trace records onto device block numbers.

    Args:
        block_size: device block size in bytes; file offsets are rounded
            down and transfer ends rounded up to this granularity.
        capacity_blocks: optional hard limit on the number of device blocks;
            ``None`` means unbounded (the common case, since the simulated
            devices are sized from the mapped trace).
    """

    def __init__(self, block_size: int, capacity_blocks: int | None = None) -> None:
        if block_size <= 0:
            raise TraceError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._file_blocks: dict[int, dict[int, int]] = {}
        self._free_blocks: list[int] = []  # min-heap of recycled blocks
        self._next_block = 0

    # -- allocation ---------------------------------------------------------

    def _allocate(self) -> int:
        if self._free_blocks:
            return heapq.heappop(self._free_blocks)
        block = self._next_block
        if self.capacity_blocks is not None and block >= self.capacity_blocks:
            raise TraceError(
                f"trace needs more than {self.capacity_blocks} device blocks"
            )
        self._next_block += 1
        return block

    @property
    def blocks_in_use(self) -> int:
        """Number of device blocks currently bound to live file data."""
        return sum(len(blocks) for blocks in self._file_blocks.values())

    @property
    def high_water_blocks(self) -> int:
        """Largest device block number ever handed out, plus one."""
        return self._next_block

    def device_blocks(self, file_id: int) -> list[int]:
        """Device blocks currently bound to ``file_id`` (in file order)."""
        mapping = self._file_blocks.get(file_id, {})
        return [mapping[index] for index in sorted(mapping)]

    # -- record translation ---------------------------------------------------

    def translate(self, record: TraceRecord) -> BlockOp:
        """Translate one file-level record into a disk-level operation."""
        if record.op is Operation.DELETE:
            mapping = self._file_blocks.pop(record.file_id, {})
            freed = tuple(sorted(mapping.values()))
            for block in freed:
                heapq.heappush(self._free_blocks, block)
            return BlockOp(
                time=record.time,
                op=Operation.DELETE,
                file_id=record.file_id,
                blocks=freed,
                size=len(freed) * self.block_size,
            )

        mapping = self._file_blocks.setdefault(record.file_id, {})
        first = record.offset // self.block_size
        last = (record.end_offset - 1) // self.block_size
        blocks = []
        for index in range(first, last + 1):
            device_block = mapping.get(index)
            if device_block is None:
                device_block = self._allocate()
                mapping[index] = device_block
            blocks.append(device_block)
        return BlockOp(
            time=record.time,
            op=record.op,
            file_id=record.file_id,
            blocks=tuple(blocks),
            size=len(blocks) * self.block_size,
        )

    def translate_all(self, records: Iterable[TraceRecord]) -> list[BlockOp]:
        """Translate a sequence of records, preserving order."""
        return [self.translate(record) for record in records]


class ExtentMapper:
    """Synthesises file identity for disk-level trace records.

    Args:
        block_size: device block size in bytes.
        max_file_blocks: cap on a synthesised file's size; a sequential
            scan of the whole device becomes a run of ``max_file_blocks``
            files instead of one device-sized file.  A single access
            larger than the cap still becomes one file (a file is at
            least as large as its largest transfer).

    The mapping is deterministic in input order: file ids are dense
    integers assigned on first touch, so the same disk trace always
    synthesises the same file structure.
    """

    def __init__(self, block_size: int, max_file_blocks: int = 4096) -> None:
        if block_size <= 0:
            raise TraceError(f"block_size must be positive, got {block_size}")
        if max_file_blocks <= 0:
            raise TraceError(
                f"max_file_blocks must be positive, got {max_file_blocks}"
            )
        self.block_size = block_size
        self.max_file_blocks = max_file_blocks
        #: device block -> (file_id, block index within the file)
        self._owner: dict[int, tuple[int, int]] = {}
        self._file_len: dict[int, int] = {}

    @property
    def n_files(self) -> int:
        """Number of synthetic files created so far."""
        return len(self._file_len)

    def assign(self, disk_offset: int, size: int) -> tuple[int, int]:
        """Map a disk transfer to ``(file_id, offset_within_file_bytes)``.

        Heuristic, in priority order: (1) a run already owned end to end
        by one file at contiguous indices reuses it; (2) a run starting
        right after a file's current tail extends that file (sequential
        streams coalesce, up to ``max_file_blocks``); (3) anything else
        — first touch, partial overlap, extent crossing — becomes a
        fresh file claiming the whole run (overlapped blocks are
        re-owned, which keeps every lookup O(run length) and total).
        """
        if disk_offset < 0:
            raise TraceError(f"disk offset must be >= 0, got {disk_offset}")
        if size <= 0:
            raise TraceError(f"transfer size must be > 0, got {size}")
        block_size = self.block_size
        first = disk_offset // block_size
        last = (disk_offset + size - 1) // block_size
        nblocks = last - first + 1
        within = disk_offset - first * block_size

        owner = self._owner.get(first)
        if owner is not None:
            file_id, index = owner
            if all(
                self._owner.get(first + k) == (file_id, index + k)
                for k in range(1, nblocks)
            ):
                return file_id, index * block_size + within

        predecessor = self._owner.get(first - 1) if first > 0 else None
        if predecessor is not None:
            file_id, index = predecessor
            tail = self._file_len[file_id]
            if index == tail - 1 and tail + nblocks <= self.max_file_blocks:
                for k in range(nblocks):
                    self._owner[first + k] = (file_id, tail + k)
                self._file_len[file_id] = tail + nblocks
                return file_id, tail * block_size + within

        file_id = len(self._file_len)
        for k in range(nblocks):
            self._owner[first + k] = (file_id, k)
        self._file_len[file_id] = nblocks
        return file_id, within


def map_trace(trace: Trace, capacity_blocks: int | None = None) -> list[BlockOp]:
    """Convenience wrapper: map a whole :class:`Trace` to disk-level ops."""
    mapper = FileMapper(trace.block_size, capacity_blocks)
    return mapper.translate_all(trace)


def dataset_blocks(trace: Trace) -> int:
    """Number of distinct device blocks a trace binds over its lifetime.

    This is the high-water mark of the mapper after the full trace, which is
    what the simulated device capacity must cover.
    """
    mapper = FileMapper(trace.block_size)
    mapper.translate_all(trace)
    return mapper.high_water_blocks
