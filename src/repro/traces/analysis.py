"""Trace analysis toolkit.

Utilities for characterising workloads the way the paper's section 4
characterises its traces — and the way this reproduction was calibrated:
working-set size, re-reference behaviour, write concentration (what a flash
cleaner sees), sequentiality (what a disk's seek arm sees), and burstiness
(what a spin-down policy sees).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.traces.record import Operation
from repro.traces.trace import Trace
from repro.units import KB


@dataclass(frozen=True)
class WorkingSetPoint:
    """Distinct data touched within one window of the trace."""

    window_start_s: float
    distinct_kbytes: float
    operations: int


def working_set_curve(trace: Trace, window_s: float) -> list[WorkingSetPoint]:
    """Distinct Kbytes touched per ``window_s`` window.

    The classic working-set view: a flat, low curve means a small stable
    working set (cache-friendly); a rising one means drift.
    """
    points: list[WorkingSetPoint] = []
    window_start = 0.0
    touched: set[tuple[int, int]] = set()
    operations = 0
    for record in trace:
        while record.time >= window_start + window_s:
            points.append(
                WorkingSetPoint(
                    window_start_s=window_start,
                    distinct_kbytes=len(touched) * trace.block_size / KB,
                    operations=operations,
                )
            )
            touched = set()
            operations = 0
            window_start += window_s
        if record.op is Operation.DELETE:
            continue
        first = record.offset // trace.block_size
        last = (record.end_offset - 1) // trace.block_size
        touched.update((record.file_id, index) for index in range(first, last + 1))
        operations += 1
    points.append(
        WorkingSetPoint(
            window_start_s=window_start,
            distinct_kbytes=len(touched) * trace.block_size / KB,
            operations=operations,
        )
    )
    return points


def reuse_distances(trace: Trace, max_tracked: int = 100_000) -> list[int]:
    """LRU stack distances for block re-references.

    Distance d means: between two touches of the same block, d distinct
    other blocks were touched.  The distribution directly predicts hit
    rates for an LRU cache of any size (hit if d < capacity_blocks).
    First touches are excluded.
    """
    stack: list[tuple[int, int]] = []
    positions: dict[tuple[int, int], int] = {}
    distances: list[int] = []
    for record in trace:
        if record.op is Operation.DELETE:
            continue
        first = record.offset // trace.block_size
        last = (record.end_offset - 1) // trace.block_size
        for index in range(first, last + 1):
            key = (record.file_id, index)
            position = positions.get(key)
            if position is not None:
                # Distance = how many blocks are above it on the stack.
                distance = len(stack) - 1 - position
                distances.append(distance)
                stack.pop(position)
                for moved in stack[position:]:
                    positions[moved] -= 1
            elif len(stack) >= max_tracked:
                evicted = stack.pop(0)
                del positions[evicted]
                for moved_key in positions:
                    positions[moved_key] -= 1
            positions[key] = len(stack)
            stack.append(key)
    return distances


def lru_hit_rate(trace: Trace, cache_blocks: int) -> float:
    """Predicted LRU hit rate at ``cache_blocks`` capacity (block touches)."""
    touches = 0
    hits = 0
    distances = reuse_distances(trace)
    # Count total block touches for the denominator.
    for record in trace:
        if record.op is Operation.DELETE:
            continue
        first = record.offset // trace.block_size
        last = (record.end_offset - 1) // trace.block_size
        touches += last - first + 1
    hits = sum(1 for distance in distances if distance < cache_blocks)
    return hits / touches if touches else 0.0


@dataclass(frozen=True)
class WriteConcentration:
    """How rewrite traffic concentrates — what a flash cleaner sees."""

    write_block_events: int
    distinct_blocks_written: int
    #: mean times each written block is (re)written
    rewrite_factor: float
    #: smallest fraction of written blocks receiving 90% of write events
    hot_fraction_for_90pct: float


def write_concentration(trace: Trace) -> WriteConcentration:
    """Summarise rewrite skew over the trace's write traffic."""
    events: Counter[tuple[int, int]] = Counter()
    for record in trace:
        if record.op is not Operation.WRITE:
            continue
        first = record.offset // trace.block_size
        last = (record.end_offset - 1) // trace.block_size
        for index in range(first, last + 1):
            events[(record.file_id, index)] += 1
    total = sum(events.values())
    if not total:
        return WriteConcentration(0, 0, 0.0, 0.0)
    covered = 0
    hot_blocks = 0
    for count in sorted(events.values(), reverse=True):
        covered += count
        hot_blocks += 1
        if covered >= 0.9 * total:
            break
    return WriteConcentration(
        write_block_events=total,
        distinct_blocks_written=len(events),
        rewrite_factor=total / len(events),
        hot_fraction_for_90pct=hot_blocks / len(events),
    )


def sequentiality(trace: Trace) -> float:
    """Fraction of read/write operations that continue the previous
    operation on the same file at the next offset — the accesses the
    paper's disk model serves without a seek."""
    sequential = 0
    total = 0
    last_file: int | None = None
    last_end: int = -1
    for record in trace:
        if record.op is Operation.DELETE:
            continue
        total += 1
        if record.file_id == last_file and record.offset == last_end:
            sequential += 1
        last_file = record.file_id
        last_end = record.end_offset
    return sequential / total if total else 0.0


@dataclass(frozen=True)
class Burstiness:
    """Inter-arrival structure — what a spin-down policy sees."""

    mean_gap_s: float
    max_gap_s: float
    #: fraction of gaps longer than the threshold (spin-down opportunities)
    long_gap_fraction: float
    #: total time inside long gaps, as a fraction of the trace duration
    long_gap_time_fraction: float


def burstiness(trace: Trace, long_gap_s: float = 5.0) -> Burstiness:
    """Characterise arrival gaps against a spin-down threshold."""
    gaps: list[float] = []
    previous: float | None = None
    for record in trace:
        if previous is not None:
            gaps.append(record.time - previous)
        previous = record.time
    if not gaps:
        return Burstiness(0.0, 0.0, 0.0, 0.0)
    long_gaps = [gap for gap in gaps if gap > long_gap_s]
    duration = trace.duration - trace[0].time
    return Burstiness(
        mean_gap_s=sum(gaps) / len(gaps),
        max_gap_s=max(gaps),
        long_gap_fraction=len(long_gaps) / len(gaps),
        long_gap_time_fraction=(sum(long_gaps) / duration) if duration else 0.0,
    )
