"""Trace transformation utilities.

Composable operations over traces: window extraction, time scaling,
operation filtering, concatenation, and timestamp interleaving — the
plumbing a trace-driven study needs once it outgrows single canned
workloads (e.g. "play the dos trace twice as fast, overlaid on mac").
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

from repro.errors import TraceError
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace


def time_slice(trace: Trace, start_s: float, end_s: float) -> Trace:
    """Records with ``start_s <= time < end_s``, rebased to start at 0."""
    if end_s <= start_s:
        raise TraceError(f"empty window [{start_s}, {end_s})")
    records = [
        TraceRecord(
            time=record.time - start_s,
            op=record.op,
            file_id=record.file_id,
            offset=record.offset,
            size=record.size,
        )
        for record in trace
        if start_s <= record.time < end_s
    ]
    return Trace(
        f"{trace.name}[{start_s:g}:{end_s:g}]",
        records,
        block_size=trace.block_size,
        metadata=trace.metadata,
    )


def scale_time(trace: Trace, factor: float) -> Trace:
    """Stretch (>1) or compress (<1) the trace's timeline by ``factor``."""
    if factor <= 0:
        raise TraceError(f"time factor must be positive, got {factor}")
    records = [
        TraceRecord(
            time=record.time * factor,
            op=record.op,
            file_id=record.file_id,
            offset=record.offset,
            size=record.size,
        )
        for record in trace
    ]
    return Trace(
        f"{trace.name}x{factor:g}",
        records,
        block_size=trace.block_size,
        metadata=trace.metadata,
    )


def filter_ops(trace: Trace, keep: Iterable[Operation]) -> Trace:
    """Only the records whose operation kind is in ``keep``."""
    kinds = set(keep)
    records = [record for record in trace if record.op in kinds]
    return Trace(
        f"{trace.name}:{'+'.join(sorted(k.value for k in kinds))}",
        records,
        block_size=trace.block_size,
        metadata=trace.metadata,
    )


def concat(traces: Sequence[Trace], gap_s: float = 0.0) -> Trace:
    """Play ``traces`` back to back, separated by ``gap_s`` of idle time.

    File-id spaces are kept disjoint so the phases do not share data.
    """
    if not traces:
        raise TraceError("concat needs at least one trace")
    if gap_s < 0:
        raise TraceError("gap must be >= 0")
    block_size = traces[0].block_size
    records: list[TraceRecord] = []
    clock_base = 0.0
    file_base = 0
    for trace in traces:
        if trace.block_size != block_size:
            raise TraceError("cannot concat traces with different block sizes")
        max_file = -1
        for record in trace:
            max_file = max(max_file, record.file_id)
            records.append(
                TraceRecord(
                    time=clock_base + record.time,
                    op=record.op,
                    file_id=file_base + record.file_id,
                    offset=record.offset,
                    size=record.size,
                )
            )
        clock_base += trace.duration + gap_s
        file_base += max_file + 1
    return Trace(
        "+".join(trace.name for trace in traces),
        records,
        block_size=block_size,
    )


def interleave(traces: Sequence[Trace]) -> Trace:
    """Merge ``traces`` by timestamp (concurrent workloads on one machine).

    File-id spaces are kept disjoint; all traces must share a block size.
    """
    if not traces:
        raise TraceError("interleave needs at least one trace")
    block_size = traces[0].block_size
    streams = []
    file_base = 0
    for order, trace in enumerate(traces):
        if trace.block_size != block_size:
            raise TraceError("cannot interleave traces with different block sizes")
        max_file = max((record.file_id for record in trace), default=-1)
        streams.append((trace, file_base))
        file_base += max_file + 1

    heap: list[tuple[float, int, int, int]] = []
    for stream_index, (trace, _) in enumerate(streams):
        if len(trace):
            heapq.heappush(heap, (trace[0].time, stream_index, 0, stream_index))

    records: list[TraceRecord] = []
    while heap:
        time, _, position, stream_index = heapq.heappop(heap)
        trace, base = streams[stream_index]
        record = trace[position]
        records.append(
            TraceRecord(
                time=record.time,
                op=record.op,
                file_id=base + record.file_id,
                offset=record.offset,
                size=record.size,
            )
        )
        if position + 1 < len(trace):
            heapq.heappush(
                heap,
                (trace[position + 1].time, stream_index, position + 1, stream_index),
            )
    return Trace(
        "|".join(trace.name for trace, _ in streams),
        records,
        block_size=block_size,
    )
