"""Plain-text trace (de)serialisation.

Format: one record per line, whitespace separated::

    <time-seconds> <op> <file-id> <offset-bytes> <size-bytes>

``op`` is one of ``read``/``write``/``delete``.  Lines starting with ``#``
are comments; a ``#!`` header line carries trace metadata as ``key=value``
pairs (currently ``name`` and ``block_size``).  ``.gz`` paths are
transparently compressed.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

from repro.errors import TraceError
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace
from repro.units import KB


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the plain-text format."""
    path = Path(path)
    with _open(path, "wt") as stream:
        stream.write(f"#! name={trace.name} block_size={trace.block_size}\n")
        for record in trace:
            stream.write(
                f"{record.time:.6f} {record.op.value} {record.file_id} "
                f"{record.offset} {record.size}\n"
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Every malformed input — bad header values, duplicate headers, bad
    record fields, records that violate the trace invariants (negative
    sizes, time running backwards) — raises :class:`TraceError` naming
    the file and 1-based line number.
    """
    path = Path(path)
    name = path.stem
    block_size = KB
    seen_header = False
    last_time: float | None = None
    records: list[TraceRecord] = []
    with _open(path, "rt") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#!"):
                if seen_header:
                    raise TraceError(
                        f"{path}:{line_number}: duplicate '#!' header line "
                        f"(one per trace; records must follow it)"
                    )
                seen_header = True
                name, block_size = _parse_header(
                    line, name, block_size, path, line_number
                )
                continue
            if line.startswith("#"):
                continue
            record = _parse_record(line, path, line_number)
            if last_time is not None and record.time < last_time:
                raise TraceError(
                    f"{path}:{line_number}: time runs backwards "
                    f"({record.time:.6f} after {last_time:.6f})"
                )
            last_time = record.time
            records.append(record)
    return Trace(name, records, block_size=block_size)


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)


def _parse_header(
    line: str, name: str, block_size: int, path: Path, line_number: int
) -> tuple[str, int]:
    for token in line[2:].split():
        key, _, value = token.partition("=")
        if key == "name":
            name = value
        elif key == "block_size":
            try:
                block_size = int(value)
            except ValueError:
                raise TraceError(
                    f"{path}:{line_number}: bad block_size {value!r} "
                    f"(not an integer)"
                ) from None
            if block_size <= 0:
                raise TraceError(
                    f"{path}:{line_number}: block_size must be positive, "
                    f"got {block_size}"
                )
    return name, block_size


def _parse_record(line: str, path: Path, line_number: int) -> TraceRecord:
    fields = line.split()
    if len(fields) != 5:
        raise TraceError(f"{path}:{line_number}: expected 5 fields, got {len(fields)}")
    try:
        time = float(fields[0])
        op = Operation(fields[1])
        file_id = int(fields[2])
        offset = int(fields[3])
        size = int(fields[4])
    except ValueError as exc:
        raise TraceError(f"{path}:{line_number}: {exc}") from exc
    try:
        return TraceRecord(
            time=time, op=op, file_id=file_id, offset=offset, size=size
        )
    except TraceError as exc:
        # Record-invariant violations (negative time/offset, delete with
        # a size, zero-size read/write) carry line provenance too.
        raise TraceError(f"{path}:{line_number}: {exc}") from exc
