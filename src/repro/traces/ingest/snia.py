"""SNIA block-trace import (MSR-Cambridge dialect).

The SNIA IOTTA repository's most-replayed corpus (MSR-Cambridge, used by
the Boukhobza & Timsit methodology this subsystem follows) is headerless
CSV with a fixed seven-column layout::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

``Timestamp`` is a Windows FILETIME (100 ns ticks), ``Offset``/``Size``
are bytes, ``Type`` is ``Read``/``Write``.  Records are disk-level; the
importer keeps one extent mapper per ``(hostname, disk)`` so offsets on
different spindles never alias, and interns each disk's synthetic files
into one global file-id namespace.
"""

from __future__ import annotations

from pathlib import Path

from repro.traces.filemap import ExtentMapper
from repro.traces.ingest.base import (
    ImportReport,
    RecordBuilder,
    iter_lines,
    open_text,
    parse_error,
    parse_int,
    parse_time,
    time_scale,
)
from repro.traces.record import Operation
from repro.traces.trace import Trace
from repro.units import KB

_OPS = {"read": Operation.READ, "write": Operation.WRITE,
        "r": Operation.READ, "w": Operation.WRITE}


def parse(
    path: str | Path,
    *,
    block_size: int = KB,
    time_unit: str = "100ns",
    name: str | None = None,
) -> tuple[Trace, ImportReport]:
    """Import an MSR-Cambridge-style SNIA trace (streaming, ``.gz`` ok)."""
    path = Path(path)
    source = str(path)
    trace_name = name or path.name.removesuffix(".gz").rsplit(".", 1)[0]
    scale = time_scale(source, time_unit)
    builder = RecordBuilder(
        source=source,
        name=trace_name,
        block_size=block_size,
        level="disk",
        time_scale=scale,
        extra_metadata={"time_unit": time_unit},
    )
    # One extent namespace per (hostname, disk); synthetic per-disk file
    # ids are interned into a dense global namespace on first touch.
    mappers: dict[tuple[str, int], ExtentMapper] = {}
    interned: dict[tuple[str, int, int], int] = {}

    lines = comments = records = 0
    with open_text(path) as stream:
        for line_number, line in iter_lines(stream, source):
            lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                comments += 1
                continue
            fields = stripped.split(",")
            if len(fields) < 6:
                raise parse_error(
                    source, line_number,
                    f"expected >= 6 comma-separated fields, got {len(fields)}",
                )
            if lines == 1 and fields[0].strip().lower() == "timestamp":
                comments += 1  # tolerated: some excerpts carry the header
                continue
            time = parse_time(source, line_number, fields[0].strip())
            host = fields[1].strip()
            disk = parse_int(source, line_number, fields[2].strip(),
                             "disk number")
            op = _OPS.get(fields[3].strip().lower())
            if op is None:
                raise parse_error(
                    source, line_number,
                    f"unknown operation {fields[3].strip()!r}",
                )
            offset = parse_int(source, line_number, fields[4].strip(),
                               "offset")
            size = parse_int(source, line_number, fields[5].strip(), "size")
            if offset < 0:
                raise parse_error(
                    source, line_number, f"offset must be >= 0, got {offset}"
                )
            if size <= 0:
                raise parse_error(
                    source, line_number, f"size must be > 0, got {size}"
                )
            mapper = mappers.get((host, disk))
            if mapper is None:
                mapper = mappers[(host, disk)] = ExtentMapper(block_size)
            local_file, file_offset = mapper.assign(offset, size)
            key = (host, disk, local_file)
            file_id = interned.get(key)
            if file_id is None:
                file_id = interned[key] = len(interned)
            builder.add(
                line_number,
                time=time,
                op=op,
                file_id=file_id,
                offset=file_offset,
                size=size,
            )
            records += 1
    builder.extra_metadata.update(
        {"synthesised_files": len(interned), "disks": len(mappers)}
    )
    report = ImportReport(
        source=source, format="snia", lines=lines, records=records,
        comments=comments, filtered=0, reordered=builder.reordered,
    )
    return builder.build(report), report
