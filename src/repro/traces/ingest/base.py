"""Shared machinery for the trace importers.

Every importer in this package is a *streaming* parser: it reads its
source line by line (``.gz`` paths are transparently decompressed) and
never holds the raw file in memory — only the normalised
:class:`~repro.traces.record.TraceRecord` list that becomes the
:class:`~repro.traces.trace.Trace`.

Importers are **total** over their input: any line either parses into a
record or raises :class:`~repro.errors.TraceError` carrying the source
path and 1-based line number.  Nothing is silently dropped — lines a
parser decides to skip (comments, filtered actions) are counted in the
returned :class:`ImportReport`.

Normalisation invariants every importer guarantees:

* times are seconds, rebased so the first record is at 0.0 (foreign
  clocks — Windows filetime ticks, boot-relative nanoseconds — never
  leak into a :class:`Trace`);
* records are sorted by time with a *stable* sort, so out-of-order
  sources (interleaved CPUs in blktrace, multi-host SNIA captures) are
  legal input and ties preserve file order;
* disk-level sources are converted to the paper's file-level records via
  the extent-mapping heuristic in
  :class:`repro.traces.filemap.ExtentMapper` (section 4.1's file-level
  vs disk-level distinction is preserved in the trace metadata).
"""

from __future__ import annotations

import gzip
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable

from repro.errors import TraceError
from repro.traces.filemap import ExtentMapper
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace

#: Multipliers from a source's time unit to seconds.
TIME_UNITS = {
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    #: Windows FILETIME ticks (100 ns), the SNIA/MSR-Cambridge clock.
    "100ns": 1e-7,
}


class ImportError_(TraceError):
    """A foreign trace could not be normalised (subclass of TraceError so
    existing ``except TraceError`` handling covers imports too)."""


def parse_error(source: str, line_number: int, detail: str) -> TraceError:
    """The one true import parse error: always path + 1-based line."""
    return ImportError_(f"{source}:{line_number}: {detail}")


def open_text(path: str | Path) -> IO[str]:
    """Open ``path`` for reading, transparently decompressing ``.gz``.

    Decoding is latin-1 with no newline translation surprises: latin-1
    maps every byte, so binary junk (embedded NULs, truncated
    multi-byte sequences) reaches the parser as *characters* and fails
    with a parse error naming the line, never a UnicodeDecodeError
    naming a byte offset.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="latin-1", errors="replace")
    return open(path, "rt", encoding="latin-1", errors="replace")


def iter_lines(stream: IO[str], source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, line)`` with trailing CR/LF stripped.

    Wraps mid-stream I/O and gzip corruption into :class:`TraceError`
    so a truncated ``.gz`` reports the line it died on instead of
    leaking ``EOFError``/``OSError`` to the caller.
    """
    line_number = 0
    while True:
        try:
            line = stream.readline()
        except (OSError, EOFError, ValueError) as exc:
            raise parse_error(source, line_number + 1, f"unreadable: {exc}") from exc
        if not line:
            return
        line_number += 1
        yield line_number, line.rstrip("\r\n")


@dataclass(frozen=True)
class ImportReport:
    """What an importer did, line by line (nothing is dropped silently)."""

    source: str
    format: str
    #: total source lines consumed
    lines: int
    #: lines that became trace records
    records: int
    #: comment / header / blank lines
    comments: int
    #: lines excluded by an explicit filter (e.g. blktrace actions other
    #: than the requested one) — counted, never silent
    filtered: int
    #: records whose timestamps arrived out of order (legal; stable-sorted)
    reordered: int

    def summary(self) -> str:
        return (
            f"{self.source}: {self.records} record(s) from {self.lines} "
            f"line(s) [{self.format}] ({self.comments} comment/header, "
            f"{self.filtered} filtered, {self.reordered} out-of-order)"
        )


@dataclass
class RecordBuilder:
    """Accumulates normalised records for one import.

    Centralises the three normalisation steps every importer shares —
    record validation with line provenance, stable time sorting, and
    time rebasing — so parsers only translate fields.
    """

    source: str
    name: str
    block_size: int
    level: str = "file"  #: "file" or "disk" (provenance, kept in metadata)
    #: seconds per source time unit.  ``add`` takes times in *source
    #: units* (ints stay exact); rebasing happens before scaling, so a
    #: Windows FILETIME epoch (~1.3e17 ticks, beyond float64's integer
    #: range) never swallows the sub-millisecond gaps between records.
    time_scale: float = 1.0
    extra_metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise TraceError(
                f"{self.source}: block_size must be positive, got "
                f"{self.block_size}"
            )
        if self.level not in ("file", "disk"):
            raise TraceError(
                f"{self.source}: level must be 'file' or 'disk', got "
                f"{self.level!r}"
            )
        self._rows: list[tuple[float, int, TraceRecord]] = []
        self._mapper = (
            ExtentMapper(self.block_size) if self.level == "disk" else None
        )
        self._reordered = 0
        self._last_time: float | None = None

    @property
    def reordered(self) -> int:
        return self._reordered

    def add(
        self,
        line_number: int,
        *,
        time: float | int,
        op: Operation,
        file_id: int | None = None,
        offset: int = 0,
        size: int = 0,
        disk_offset: int | None = None,
    ) -> None:
        """Add one normalised record (disk-level when ``disk_offset`` is
        given: the file id and in-file offset are synthesised by the
        extent mapper)."""
        if disk_offset is not None:
            if self._mapper is None:
                raise parse_error(
                    self.source, line_number,
                    "disk-level record in a file-level import",
                )
            if disk_offset < 0:
                raise parse_error(
                    self.source, line_number,
                    f"disk offset must be >= 0, got {disk_offset}",
                )
            if size <= 0:
                raise parse_error(
                    self.source, line_number,
                    f"transfer size must be > 0, got {size}",
                )
            file_id, offset = self._mapper.assign(disk_offset, size)
        elif file_id is None:
            raise parse_error(self.source, line_number, "record names no file")
        try:
            record = TraceRecord(
                # Rebased later: validate with a provisional zero time so
                # rebasing (which only shifts times relative to the first
                # record) cannot un-validate records.
                time=0.0,
                op=op,
                file_id=file_id,
                offset=offset,
                size=size,
            )
        except TraceError as exc:
            raise parse_error(self.source, line_number, str(exc)) from exc
        if time < 0:
            raise parse_error(
                self.source, line_number, f"record time must be >= 0, got {time}"
            )
        if self._last_time is not None and time < self._last_time:
            self._reordered += 1
        self._last_time = time
        self._rows.append((time, len(self._rows), record))

    def build(self, report: ImportReport) -> Trace:
        """Finish the import: stable-sort, rebase to t=0, wrap in a Trace."""
        self._rows.sort(key=lambda row: (row[0], row[1]))
        base = self._rows[0][0] if self._rows else 0.0
        scale = self.time_scale
        records = [
            TraceRecord(
                time=(time - base) * scale,
                op=record.op,
                file_id=record.file_id,
                offset=record.offset,
                size=record.size,
            )
            for time, _, record in self._rows
        ]
        metadata: dict[str, Any] = {
            "imported_from": report.source,
            "import_format": report.format,
            "source_level": self.level,
            "import_lines": report.lines,
            "import_filtered": report.filtered,
            "import_reordered": report.reordered,
        }
        if self._mapper is not None:
            metadata["synthesised_files"] = self._mapper.n_files
        metadata.update(self.extra_metadata)
        return Trace(self.name, records, block_size=self.block_size,
                     metadata=metadata)


def parse_float(source: str, line_number: int, text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise parse_error(
            source, line_number, f"bad {what} {text!r} (not a number)"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise parse_error(source, line_number, f"bad {what} {text!r} (not finite)")
    return value


def parse_int(source: str, line_number: int, text: str, what: str) -> int:
    try:
        return int(text, 10)
    except ValueError:
        raise parse_error(
            source, line_number, f"bad {what} {text!r} (not an integer)"
        ) from None


def parse_time(source: str, line_number: int, text: str) -> float | int:
    """Parse a timestamp, preferring exact integers (tick clocks)."""
    try:
        return int(text, 10)
    except ValueError:
        return parse_float(source, line_number, text, "time")


def time_scale(source: str, unit: str) -> float:
    try:
        return TIME_UNITS[unit]
    except KeyError:
        raise TraceError(
            f"{source}: unknown time unit {unit!r}; expected one of "
            f"{sorted(TIME_UNITS)}"
        ) from None


#: Signature every format module exposes as ``parse``.
Parser = Callable[..., tuple[Trace, ImportReport]]
