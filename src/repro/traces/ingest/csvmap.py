"""CSV trace import with a declarative column map.

Real-world CSV block/file traces agree on nothing but commas, so the
importer is driven by a :class:`CsvSpec` naming which column holds what
(by header name or 0-based index), the time unit, and how operation
strings map onto the paper's read/write/delete vocabulary::

    spec = CsvSpec(
        columns={"time": "Timestamp", "op": "Type",
                 "offset": "Offset", "size": "Size"},
        time_unit="ms",
        level="disk",
    )
    trace, report = parse("trace.csv.gz", spec=spec)

File-level sources additionally map a ``file`` column; disk-level
sources (no ``file`` column) synthesise file ids via the extent-mapping
heuristic (:class:`repro.traces.filemap.ExtentMapper`).
"""

from __future__ import annotations

import csv as _csv
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

from repro.errors import TraceError
from repro.traces.ingest.base import (
    ImportReport,
    RecordBuilder,
    iter_lines,
    open_text,
    parse_error,
    parse_int,
    parse_time,
    time_scale,
)
from repro.traces.record import Operation
from repro.traces.trace import Trace
from repro.units import KB

#: Default spelling variants accepted for each operation (lower-cased).
DEFAULT_OP_MAP = {
    "read": "read", "r": "read", "rd": "read",
    "write": "write", "w": "write", "wr": "write",
    "delete": "delete", "d": "delete", "del": "delete", "erase": "delete",
    "trim": "delete", "unlink": "delete",
}

#: Fields a column map may bind.  ``time``, ``op`` and ``size`` are
#: required; ``file`` selects file-level import, its absence disk-level.
CSV_FIELDS = ("time", "op", "file", "offset", "size")


@dataclass(frozen=True)
class CsvSpec:
    """Declarative description of one CSV trace dialect.

    ``columns`` maps canonical field names (:data:`CSV_FIELDS`) to the
    source's column header names (``str``) or 0-based indices (``int``).
    Header names require ``header=True`` (the default); indices work
    either way.
    """

    columns: dict[str, str | int]
    time_unit: str = "s"
    delimiter: str = ","
    header: bool = True
    #: "file" if a ``file`` column is mapped, else "disk"
    op_map: dict[str, str] = dataclass_field(default_factory=dict)
    block_size: int = KB
    name: str | None = None

    def __post_init__(self) -> None:
        for fieldname in ("time", "op", "size"):
            if fieldname not in self.columns:
                raise TraceError(
                    f"csv column map must bind {fieldname!r} "
                    f"(got {sorted(self.columns)})"
                )
        unknown = set(self.columns) - set(CSV_FIELDS)
        if unknown:
            raise TraceError(
                f"csv column map binds unknown field(s) {sorted(unknown)}; "
                f"expected a subset of {list(CSV_FIELDS)}"
            )

    @property
    def level(self) -> str:
        return "file" if "file" in self.columns else "disk"

    def resolved_op_map(self) -> dict[str, str]:
        mapping = dict(DEFAULT_OP_MAP)
        mapping.update({
            key.lower(): value.lower() for key, value in self.op_map.items()
        })
        return mapping


def parse_column_map(text: str) -> dict[str, str | int]:
    """Parse a CLI column map: ``time=Timestamp,op=2,offset=Offset,...``.

    Values that look like integers become 0-based column indices.
    """
    columns: dict[str, str | int] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, value = token.partition("=")
        if not sep or not value:
            raise TraceError(
                f"bad column-map entry {token!r}; expected field=column"
            )
        columns[key.strip()] = (
            int(value) if value.strip().lstrip("-").isdigit() else value.strip()
        )
    return columns


def _resolve_indices(
    spec: CsvSpec, header_row: list[str] | None, source: str
) -> dict[str, int]:
    """Bind each mapped field to a concrete column index."""
    indices: dict[str, int] = {}
    for fieldname, column in spec.columns.items():
        if isinstance(column, int):
            if column < 0:
                raise TraceError(
                    f"{source}: column index for {fieldname!r} must be >= 0"
                )
            indices[fieldname] = column
        else:
            if header_row is None:
                raise TraceError(
                    f"{source}: column {column!r} is named but the spec "
                    f"declares header=False; use a 0-based index"
                )
            try:
                indices[fieldname] = header_row.index(column)
            except ValueError:
                raise TraceError(
                    f"{source}:1: no column {column!r} in header "
                    f"{header_row!r}"
                ) from None
    return indices


def parse(
    path: str | Path, *, spec: CsvSpec
) -> tuple[Trace, ImportReport]:
    """Import a CSV trace according to ``spec`` (streaming, ``.gz`` ok)."""
    path = Path(path)
    source = str(path)
    name = spec.name or path.name.removesuffix(".gz").rsplit(".", 1)[0]
    scale = time_scale(source, spec.time_unit)
    op_map = spec.resolved_op_map()

    builder = RecordBuilder(
        source=source,
        name=name,
        block_size=spec.block_size,
        level=spec.level,
        time_scale=scale,
        extra_metadata={"time_unit": spec.time_unit},
    )

    lines = comments = 0
    indices: dict[str, int] | None = None
    with open_text(path) as stream:
        for line_number, line in iter_lines(stream, source):
            lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                comments += 1
                continue
            try:
                row = next(_csv.reader([line], delimiter=spec.delimiter))
            except (_csv.Error, StopIteration) as exc:
                raise parse_error(source, line_number, f"bad csv: {exc}") from exc
            if indices is None:
                if spec.header:
                    comments += 1
                    indices = _resolve_indices(spec, row, source)
                    continue
                indices = _resolve_indices(spec, None, source)
            width = max(indices.values()) + 1
            if len(row) < width:
                raise parse_error(
                    source, line_number,
                    f"expected >= {width} column(s), got {len(row)}",
                )
            builder.add(line_number, **_translate(
                source, line_number, row, indices, op_map,
            ))
    report = ImportReport(
        source=source, format="csv", lines=lines,
        records=lines - comments, comments=comments, filtered=0,
        reordered=builder.reordered,
    )
    return builder.build(report), report


def _translate(
    source: str,
    line_number: int,
    row: list[str],
    indices: dict[str, int],
    op_map: dict[str, str],
) -> dict:
    time = parse_time(source, line_number, row[indices["time"]].strip())
    op_text = row[indices["op"]].strip().lower()
    op_name = op_map.get(op_text)
    if op_name is None:
        raise parse_error(
            source, line_number,
            f"unknown operation {row[indices['op']].strip()!r}",
        )
    op = Operation(op_name)
    size = parse_int(source, line_number, row[indices["size"]].strip(), "size")
    offset = 0
    if "offset" in indices:
        offset = parse_int(source, line_number,
                           row[indices["offset"]].strip(), "offset")
    if op is Operation.DELETE:
        # Foreign traces routinely carry a size on deletes; the paper's
        # records do not, so it is normalised away.
        size = 0
    if "file" in indices:
        file_id = parse_int(source, line_number,
                            row[indices["file"]].strip(), "file id")
        return {"time": time, "op": op, "file_id": file_id,
                "offset": offset, "size": size}
    if op is Operation.DELETE:
        raise parse_error(
            source, line_number,
            "delete records need file identity; disk-level imports "
            "cannot carry deletions",
        )
    return {"time": time, "op": op, "disk_offset": offset, "size": size}
