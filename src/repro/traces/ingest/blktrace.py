"""blktrace/blkparse-style text import.

Parses the default ``blkparse`` output format, one event per line::

    8,0    3     11     0.009507758   697  Q   W 223490 + 8 [kjournald]
    ^dev   ^cpu  ^seq   ^time-s       ^pid ^act ^rwbs ^sector +nsect ^proc

Only one action is kept (default ``Q``, the queue event — one per
logical request, before the scheduler splits/merges it); every other
action line is counted as filtered, never silently dropped.  The
``rwbs`` field decides the operation: ``R`` read, ``W`` write, ``D``
discard (normalised to the paper's delete — rejected, since disk-level
imports carry no file identity to delete).  Sector numbers are 512-byte
units, converted to byte offsets; file ids are synthesised by the
extent-mapping heuristic.
"""

from __future__ import annotations

from pathlib import Path

from repro.traces.ingest.base import (
    ImportReport,
    RecordBuilder,
    iter_lines,
    open_text,
    parse_error,
    parse_float,
    parse_int,
)
from repro.traces.record import Operation
from repro.traces.trace import Trace
from repro.units import KB

#: blkparse sector unit, bytes.
SECTOR = 512


def parse(
    path: str | Path,
    *,
    action: str = "Q",
    block_size: int = KB,
    name: str | None = None,
) -> tuple[Trace, ImportReport]:
    """Import a blkparse-format text trace (streaming, ``.gz`` ok)."""
    path = Path(path)
    source = str(path)
    trace_name = name or path.name.removesuffix(".gz").rsplit(".", 1)[0]
    builder = RecordBuilder(
        source=source,
        name=trace_name,
        block_size=block_size,
        level="disk",
        extra_metadata={"blktrace_action": action},
    )

    lines = comments = filtered = records = 0
    with open_text(path) as stream:
        for line_number, line in iter_lines(stream, source):
            lines += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                comments += 1
                continue
            if stripped.startswith("CPU") or stripped.startswith("Total"):
                # blkparse summary footer
                comments += 1
                continue
            fields = stripped.split()
            if len(fields) < 7:
                raise parse_error(
                    source, line_number,
                    f"expected >= 7 fields, got {len(fields)}",
                )
            line_action = fields[5]
            if line_action != action:
                filtered += 1
                continue
            time = parse_float(source, line_number, fields[3], "time")
            rwbs = fields[6]
            if "R" in rwbs and "W" not in rwbs:
                op = Operation.READ
            elif "W" in rwbs:
                op = Operation.WRITE
            elif "D" in rwbs:
                raise parse_error(
                    source, line_number,
                    "discard records need file identity; disk-level "
                    "imports cannot carry deletions",
                )
            else:
                raise parse_error(
                    source, line_number, f"unknown rwbs {rwbs!r}"
                )
            if len(fields) < 9 or fields[8] != "+":
                # Flush/barrier events carry no "sector + count" payload;
                # they are I/O-less from the paper's perspective.
                if len(fields) >= 8 and fields[7].isdigit():
                    filtered += 1
                    continue
                raise parse_error(
                    source, line_number,
                    "expected 'sector + count' payload",
                )
            sector = parse_int(source, line_number, fields[7], "sector")
            nsectors = parse_int(source, line_number, fields[9]
                                 if len(fields) > 9 else "", "sector count")
            if sector < 0:
                raise parse_error(
                    source, line_number, f"sector must be >= 0, got {sector}"
                )
            if nsectors <= 0:
                raise parse_error(
                    source, line_number,
                    f"sector count must be > 0, got {nsectors}",
                )
            builder.add(
                line_number,
                time=time,
                op=op,
                disk_offset=sector * SECTOR,
                size=nsectors * SECTOR,
            )
            records += 1
    report = ImportReport(
        source=source, format="blktrace", lines=lines, records=records,
        comments=comments, filtered=filtered, reordered=builder.reordered,
    )
    return builder.build(report), report
