"""Pluggable trace import: foreign block/file traces → :class:`Trace`.

Three formats ship in-tree (all streaming, ``.gz``-transparent, total
over malformed input — every failure is a :class:`~repro.errors.
TraceError` naming the source line):

* ``csv`` — arbitrary CSV dialects via a declarative
  :class:`~repro.traces.ingest.csvmap.CsvSpec` column map;
* ``blktrace`` — blkparse-style text (Linux block layer);
* ``snia`` — SNIA IOTTA / MSR-Cambridge seven-column block traces.

:func:`import_trace` is the front door: it resolves the format (explicit
or sniffed), parses, and — when reference statistics are supplied —
enforces the Table 3 conformance gate
(:func:`repro.traces.stats.check_conformance`) before the trace is
allowed into the pipeline, mirroring how every other entry point
(fitting, replay) is gated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.errors import TraceError
from repro.traces.ingest import blktrace as _blktrace
from repro.traces.ingest import csvmap as _csvmap
from repro.traces.ingest import snia as _snia
from repro.traces.ingest.base import ImportReport, open_text
from repro.traces.ingest.csvmap import CsvSpec, parse_column_map
from repro.traces.trace import Trace

#: format name -> parse callable (path, **options) -> (Trace, ImportReport)
FORMATS: dict[str, Callable[..., tuple[Trace, ImportReport]]] = {
    "csv": _csvmap.parse,
    "blktrace": _blktrace.parse,
    "snia": _snia.parse,
}


def detect_format(path: str | Path) -> str:
    """Sniff the format from the first non-blank, non-comment line.

    Heuristics, in order: seven comma-separated fields whose fourth is a
    read/write word → ``snia``; a ``sector + count`` payload →
    ``blktrace``; any comma-separated line → ``csv``.
    """
    path = Path(path)
    with open_text(path) as stream:
        for _ in range(200):
            line = stream.readline()
            if not line:
                break
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split(",")
            if len(fields) >= 6 and fields[3].strip().lower() in (
                "read", "write", "r", "w",
            ):
                return "snia"
            if "+" in stripped.split() and len(stripped.split()) >= 9:
                return "blktrace"
            if len(fields) >= 3:
                return "csv"
            break
    raise TraceError(
        f"{path}: cannot detect trace format; pass format= explicitly "
        f"(one of {sorted(FORMATS)})"
    )


def import_trace(
    path: str | Path,
    *,
    format: str = "auto",
    expect: Any | None = None,
    tolerances: dict[str, Any] | None = None,
    **options: Any,
) -> tuple[Trace, ImportReport]:
    """Import a foreign trace, optionally gated by reference statistics.

    Args:
        path: source file (``.gz`` transparently decompressed).
        format: ``csv`` / ``blktrace`` / ``snia``, or ``auto`` to sniff.
        expect: reference :class:`~repro.traces.stats.TraceStatistics`
            (or a mapping as produced by its ``to_dict``); when given,
            the imported trace's statistics must conform within the
            declared tolerances or the import raises
            :class:`~repro.errors.TraceError`.
        tolerances: per-field overrides for the conformance gate.
        **options: forwarded to the format parser (``spec=`` for csv,
            ``action=`` for blktrace, ``block_size=``, ``name=`` ...).
    """
    resolved = detect_format(path) if format == "auto" else format
    try:
        parser = FORMATS[resolved]
    except KeyError:
        raise TraceError(
            f"unknown trace format {resolved!r}; expected one of "
            f"{sorted(FORMATS)} (or 'auto')"
        ) from None
    trace, report = parser(path, **options)
    if expect is not None:
        from repro.traces.stats import (
            TraceStatistics,
            check_conformance,
            compute_statistics,
        )

        if isinstance(expect, dict):
            expect = TraceStatistics.from_dict(expect)
        conformance = check_conformance(
            expect, compute_statistics(trace), tolerances=tolerances
        )
        if not conformance.ok:
            raise TraceError(
                f"{path}: imported trace does not conform to the "
                f"reference statistics:\n  "
                + "\n  ".join(conformance.problems())
            )
        trace.metadata["conformance"] = conformance.to_dict()
    return trace, report


__all__ = [
    "CsvSpec",
    "FORMATS",
    "ImportReport",
    "detect_format",
    "import_trace",
    "parse_column_map",
]
