"""Fit a :class:`~repro.traces.workloads.WorkloadSpec` to any trace.

The paper's synthetic workloads are hand-tuned to Table 3.  This module
closes the loop for *arbitrary* traces — imported (``repro import``) or
synthetic — by learning the generator parameters from the trace itself:

* first-moment fields (read/delete fractions, block size, mean transfer
  sizes, inter-arrival mean and cap) transfer directly from the trace's
  :class:`~repro.traces.stats.TraceStatistics`;
* the inter-arrival *spread* is matched by solving the generator's
  exponential-mixture ``burst_weight`` against the target standard
  deviation with bisection over simulated gap draws (the simulation uses
  the real generator code, so the cap and chunk-rescaling effects are
  priced in);
* file-popularity skew is matched by solving the Zipf exponent whose
  top-decile access mass equals the trace's;
* run locality (``repeat_fraction``, ``sequential_fraction``) and the
  file-size range are measured directly;
* distinct-data coverage is *calibrated*: the fitter generates short
  probe traces and rescales the dataset size until the probe's distinct
  Kbytes matches the source's over the same operation count.

The result is a :class:`FittedWorkload`: a frozen model that emits
arbitrarily long, seed-deterministic extensions through the standard
``WorkloadSpec.generate`` path, serialises to a ``model.json``, and
verifies itself against its source's Table 3 row via
:func:`~repro.traces.stats.check_conformance` with
:data:`~repro.traces.stats.FITTED_TOLERANCES`.

Known limit: the generator's gap mixture cannot be *less* dispersed than
a single exponential, so traces with inter-arrival std below their mean
fit to the pure-exponential floor (std == mean).  None of the paper's
workloads are in that regime.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from collections import Counter
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Any, Mapping

from repro.errors import TraceError
from repro.traces.record import Operation
from repro.traces.stats import (
    ConformanceReport,
    FITTED_TOLERANCES,
    TraceStatistics,
    check_conformance,
    compute_statistics,
)
from repro.traces.trace import Trace
from repro.traces.workloads import WorkloadSpec, _WorkloadGenerator
from repro.units import KB

#: On-disk model format marker (``model.json``).
MODEL_FORMAT = "repro-fitted-workload"
MODEL_VERSION = 1

#: Probe length cap for calibration rounds — enough for stable moments
#: without making ``repro fit`` slow on long traces.
_PROBE_OPS = 40_000
#: Burst-mean scale held fixed while ``burst_weight`` is solved.
_BURST_MEAN_SCALE = 0.1


@dataclass(frozen=True)
class FittedWorkload:
    """A workload model learned from a trace.

    ``spec`` drives the standard synthetic generator; ``reference`` is
    the source trace's Table 3 row, kept so any extension can be held to
    it (:meth:`verify`).  Instances are immutable and serialise to a
    stable JSON document whose :meth:`content_digest` keys engine
    caches.
    """

    spec: WorkloadSpec
    reference: TraceStatistics
    source: str

    # -- generation --------------------------------------------------------

    def generate(self, seed: int = 0, n_ops: int | None = None) -> Trace:
        """Emit a seed-deterministic extension of the fitted workload.

        ``n_ops`` defaults to the source trace's record count; any
        length is legal (the model is a generator, not a replay).
        """
        if n_ops is None:
            n_ops = self.reference.n_records
        trace = self.spec.generate(seed=seed, n_ops=n_ops)
        trace.metadata.update(
            {
                "generator": "FittedWorkload",
                "fitted_from": self.source,
                "model_digest": self.content_digest(),
            }
        )
        return trace

    def verify(
        self, *, seed: int = 0, length: float = 2.0
    ) -> ConformanceReport:
        """Generate an extension ``length`` times the source's record
        count and check it against the source's Table 3 row within
        :data:`FITTED_TOLERANCES`."""
        n_ops = max(2, int(round(self.reference.n_records * length)))
        extension = self.generate(seed=seed, n_ops=n_ops)
        return check_conformance(
            self.reference,
            compute_statistics(extension),
            tolerances=FITTED_TOLERANCES,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        spec_dict = {
            field.name: getattr(self.spec, field.name)
            for field in dataclass_fields(self.spec)
        }
        return {
            "format": MODEL_FORMAT,
            "version": MODEL_VERSION,
            "source": self.source,
            "reference": self.reference.to_dict(),
            "spec": spec_dict,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FittedWorkload":
        if data.get("format") != MODEL_FORMAT:
            raise TraceError(
                f"not a fitted-workload model (format="
                f"{data.get('format')!r}, expected {MODEL_FORMAT!r})"
            )
        if data.get("version") != MODEL_VERSION:
            raise TraceError(
                f"unsupported fitted-workload model version "
                f"{data.get('version')!r} (this build reads "
                f"{MODEL_VERSION})"
            )
        try:
            spec = WorkloadSpec(**data["spec"])
            reference = TraceStatistics.from_dict(data["reference"])
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed fitted-workload model: {exc}") from exc
        return cls(
            spec=spec, reference=reference, source=str(data.get("source", ""))
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "FittedWorkload":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise TraceError(f"no fitted-workload model at {path}") from None
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise TraceError(f"{path}: model must be a JSON object")
        return cls.from_dict(data)

    def content_digest(self) -> str:
        """Stable content hash of the model — what cache keys hash, so a
        re-fit model at the same path invalidates cached results."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Fitting.


def fit_trace(
    trace: Trace,
    *,
    name: str | None = None,
    source: str | None = None,
    calibration_rounds: int = 3,
    probe_seed: int = 0,
) -> FittedWorkload:
    """Learn a :class:`FittedWorkload` from ``trace``.

    ``calibration_rounds`` bounds the probe-generate-rescale loop that
    matches distinct-data coverage and realised transfer sizes; 0 skips
    calibration (moment transfer only).
    """
    if len(trace) < 2:
        raise TraceError(
            f"cannot fit {trace.name!r}: need >= 2 records, got {len(trace)}"
        )
    stats = compute_statistics(trace)
    fitted_name = name or f"fitted-{trace.name}"
    delete_fraction = stats.n_deletes / stats.n_records
    read_fraction = min(stats.fraction_reads, 1.0 - delete_fraction)

    repeat = _repeat_fraction(trace)
    sequential = _sequential_share(trace, repeat)
    min_blocks, max_blocks = _file_size_range(trace)
    zipf = _fit_zipf_exponent(trace)
    burst_weight = _fit_burst_weight(stats, probe_seed)

    # Duration is pinned so the spec's default operation count equals the
    # source's record count: the model extends by *operations*, and the
    # per-record rate is what conformance compares.
    spec = WorkloadSpec(
        name=fitted_name,
        duration_s=stats.interarrival_mean_s * stats.n_records,
        distinct_kbytes=max(1, int(round(stats.distinct_kbytes))),
        read_fraction=read_fraction,
        block_size=trace.block_size,
        mean_read_blocks=max(1.0, stats.mean_read_blocks),
        mean_write_blocks=max(1.0, stats.mean_write_blocks),
        interarrival_mean_s=stats.interarrival_mean_s,
        interarrival_max_s=max(
            stats.interarrival_max_s, stats.interarrival_mean_s
        ),
        burst_weight=burst_weight,
        burst_mean_scale=_BURST_MEAN_SCALE,
        delete_fraction=delete_fraction,
        zipf_exponent=zipf,
        repeat_fraction=repeat,
        sequential_fraction=sequential,
        min_file_blocks=min_blocks,
        max_file_blocks=max_blocks,
    )
    spec = _calibrate(spec, trace, stats, calibration_rounds, probe_seed)
    return FittedWorkload(
        spec=spec, reference=stats, source=source or trace.name
    )


def _replace(spec: WorkloadSpec, **changes: Any) -> WorkloadSpec:
    values = {
        field.name: getattr(spec, field.name)
        for field in dataclass_fields(spec)
    }
    values.update(changes)
    return WorkloadSpec(**values)


def _repeat_fraction(trace: Trace) -> float:
    """Fraction of operations that re-touch the immediately previous
    file — the generator's run-locality knob, measured directly."""
    repeats = 0
    previous: int | None = None
    for record in trace:
        if previous is not None and record.file_id == previous:
            repeats += 1
        previous = record.file_id
    if len(trace) < 2:
        return 0.0
    return min(0.95, repeats / (len(trace) - 1))


def _sequential_share(trace: Trace, repeat: float) -> float:
    """Generator ``sequential_fraction`` implied by the trace.

    The generator only continues sequentially when the same file is
    re-touched, so the observed whole-trace sequentiality is roughly
    ``repeat * sequential_fraction``; invert that, conservatively.
    """
    sequential = 0
    total = 0
    last_file: int | None = None
    last_end = -1
    for record in trace:
        if record.op is Operation.DELETE:
            continue
        total += 1
        if record.file_id == last_file and record.offset == last_end:
            sequential += 1
        last_file = record.file_id
        last_end = record.end_offset
    if not total:
        return 0.0
    observed = sequential / total
    return min(0.95, observed / max(repeat, 0.05))


def _file_size_range(trace: Trace) -> tuple[int, int]:
    """File-size bounds (blocks) from the extents the trace touches."""
    extents: dict[int, int] = {}
    for record in trace:
        if record.size <= 0:
            continue
        end = record.end_offset
        if end > extents.get(record.file_id, 0):
            extents[record.file_id] = end
    if not extents:
        return 4, 64
    sizes = sorted(
        max(1, -(-extent // trace.block_size)) for extent in extents.values()
    )
    low = sizes[max(0, int(len(sizes) * 0.05) - 1)]
    high = sizes[min(len(sizes) - 1, int(len(sizes) * 0.95))]
    return max(1, low), max(high, low, 4)


def _fit_zipf_exponent(trace: Trace) -> float:
    """Solve the Zipf exponent whose top-decile mass matches the trace's.

    The generator draws files from a Zipf-ranked popularity law; its
    skew is summarised by the fraction of accesses landing on the top
    10% of files.  That scalar is measured on the trace and the exponent
    solved by bisection (the mass is monotone in the exponent).
    """
    counts = Counter(record.file_id for record in trace)
    n_files = len(counts)
    if n_files < 10:
        return 0.0
    total = sum(counts.values())
    top_k = max(1, n_files // 10)
    target = sum(sorted(counts.values(), reverse=True)[:top_k]) / total

    def top_mass(exponent: float) -> float:
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n_files)]
        return sum(weights[:top_k]) / sum(weights)

    low, high = 0.0, 4.0
    if target <= top_mass(low):
        return low
    if target >= top_mass(high):
        return high
    for _ in range(40):
        mid = (low + high) / 2.0
        if top_mass(mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


#: Burst weights searched when matching inter-arrival spread.  A grid,
#: not bisection: the cap at ``interarrival_max_s`` makes realised std
#: *non-monotone* in the weight (as the weight approaches 1 the mid
#: component degenerates into rare capped spikes and the spread
#: collapses), so a root-finder can converge on a pathological weight.
_BURST_WEIGHT_GRID = (
    0.0, 0.2, 0.4, 0.6, 0.75, 0.85, 0.9, 0.93,
    0.95, 0.97, 0.98, 0.99, 0.995,
)


def _fit_burst_weight(stats: TraceStatistics, probe_seed: int) -> float:
    """Choose ``burst_weight`` so the gap mixture's realised std is as
    close as possible to the trace's inter-arrival std.

    Gap draws come from the *real* generator (cap and chunk-rescaling
    included), so the chosen weight is calibrated against what
    generation will actually produce.
    """
    target = stats.interarrival_std_s
    if target <= stats.interarrival_mean_s:
        # Sub-exponential spread: the mixture floor is a single
        # exponential (std == mean); degenerate the burst component.
        return 0.0

    def realised_std(weight: float) -> float:
        spec = WorkloadSpec(
            name="gap-probe",
            duration_s=stats.interarrival_mean_s * 8192,
            distinct_kbytes=64,
            read_fraction=0.5,
            block_size=KB,
            mean_read_blocks=1.0,
            mean_write_blocks=1.0,
            interarrival_mean_s=stats.interarrival_mean_s,
            interarrival_max_s=max(
                stats.interarrival_max_s, stats.interarrival_mean_s
            ),
            burst_weight=weight,
            burst_mean_scale=_BURST_MEAN_SCALE,
        )
        generator = _WorkloadGenerator(spec, random.Random(probe_seed))
        gaps = [generator._interarrival() for _ in range(8192)]
        mean = sum(gaps) / len(gaps)
        return math.sqrt(sum((gap - mean) ** 2 for gap in gaps) / len(gaps))

    return min(
        _BURST_WEIGHT_GRID,
        key=lambda weight: abs(realised_std(weight) - target),
    )


def _calibrate(
    spec: WorkloadSpec,
    trace: Trace,
    stats: TraceStatistics,
    rounds: int,
    probe_seed: int,
) -> WorkloadSpec:
    """Probe-generate-rescale loop for coverage and realised sizes.

    Realised distinct Kbytes depends on skew and length, and realised
    mean transfer sizes sag below target when draws are clipped to file
    boundaries; both are corrected by generating short probes and
    rescaling the knobs.  Probes compare against the source *truncated
    to the probe length* so coverage is compared like for like.
    """
    probe_ops = min(stats.n_records, _PROBE_OPS)
    if probe_ops < 2:
        return spec
    truncated = Trace(
        trace.name,
        list(trace.records[:probe_ops]),
        block_size=trace.block_size,
    )
    probe_target = compute_statistics(truncated)
    for _ in range(max(0, rounds)):
        probe = spec.generate(seed=probe_seed, n_ops=probe_ops)
        realised = compute_statistics(probe)
        changes: dict[str, Any] = {}
        if realised.distinct_kbytes > 0 and probe_target.distinct_kbytes > 0:
            ratio = probe_target.distinct_kbytes / realised.distinct_kbytes
            if abs(ratio - 1.0) > 0.05:
                factor = min(5.0, max(0.2, ratio))
                changes["distinct_kbytes"] = max(
                    1, int(round(spec.distinct_kbytes * factor))
                )
        for field, realised_mean, target_mean in (
            ("mean_read_blocks", realised.mean_read_blocks,
             stats.mean_read_blocks),
            ("mean_write_blocks", realised.mean_write_blocks,
             stats.mean_write_blocks),
        ):
            if realised_mean > 0 and target_mean > 0:
                ratio = target_mean / realised_mean
                if abs(ratio - 1.0) > 0.05:
                    factor = min(3.0, max(0.5, ratio))
                    changes[field] = max(
                        1.0, getattr(spec, field) * factor
                    )
        if not changes:
            break
        spec = _replace(spec, **changes)
    return _calibrate_interarrival(spec, stats, probe_seed)


def _calibrate_interarrival(
    spec: WorkloadSpec, stats: TraceStatistics, probe_seed: int
) -> WorkloadSpec:
    """Correct the systematic gap between spec and realised *per-record*
    inter-arrival means.

    Two generator mechanics push the realised mean off spec: gap chunks
    are rescaled to the spec mean and then capped at the maximum (so
    real mass at the cap sags the mean — hp's 30-minute ceiling over an
    11 s mean), and skipped iterations (a read of a deleted file, a
    re-delete) consume a gap without emitting a record (inflating the
    per-record mean for deleting workloads).  Both are systematic, so
    they are measured on generated probes — but with bursty mixtures
    the mean is dominated by rare long gaps, so probes are long and
    averaged over several seeds regardless of the source's length;
    a single short probe would chase sampling noise instead.  Duration
    follows the mean so the spec's nominal operation count stays the
    source's record count.
    """
    target = stats.interarrival_mean_s
    if target <= 0:
        return spec
    probe_ops = 8192
    for _ in range(3):
        realised_total = 0.0
        for offset in range(4):
            probe = spec.generate(seed=probe_seed + offset, n_ops=probe_ops)
            realised_total += compute_statistics(probe).interarrival_mean_s
        realised = realised_total / 4
        if realised <= 0:
            break
        ratio = target / realised
        if abs(ratio - 1.0) <= 0.03:
            break
        factor = min(3.0, max(0.5, ratio))
        mean = spec.interarrival_mean_s * factor
        spec = _replace(
            spec,
            interarrival_mean_s=mean,
            duration_s=mean * stats.n_records,
        )
    return spec


__all__ = [
    "FittedWorkload",
    "MODEL_FORMAT",
    "MODEL_VERSION",
    "fit_trace",
]
