"""Trace record types.

The paper's traces are *file-level*: each record says which file is
accessed, whether the operation is a read or write, the location within the
file, the size of the transfer, and the time of the access (section 4.1).
:class:`TraceRecord` captures exactly those fields, plus ``DELETE`` for the
``dos`` trace's deletions and the ``synth`` workload's erase operations.

Before simulation, file-level records are preprocessed into disk-level
operations by associating a unique disk location with each file (paper
section 4.1); :class:`BlockOp` is the result of that preprocessing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TraceError


class Operation(enum.Enum):
    """The operation kinds that appear in traces."""

    READ = "read"
    WRITE = "write"
    #: Whole-file deletion (``dos`` trace) or erase (``synth`` workload).
    DELETE = "delete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One file-level trace event.

    Attributes:
        time: seconds since the start of the trace.
        op: the operation kind.
        file_id: opaque file identifier, unique within the trace.
        offset: byte offset of the transfer within the file.
        size: transfer length in bytes (0 for ``DELETE``).
    """

    time: float
    op: Operation
    file_id: int
    offset: int = 0
    size: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"record time must be >= 0, got {self.time}")
        if self.offset < 0:
            raise TraceError(f"record offset must be >= 0, got {self.offset}")
        if self.op is Operation.DELETE:
            if self.size != 0:
                raise TraceError("DELETE records must have size 0")
        elif self.size <= 0:
            raise TraceError(
                f"{self.op.value} records must have size > 0, got {self.size}"
            )

    @property
    def end_offset(self) -> int:
        """One past the last byte touched by this record."""
        return self.offset + self.size


@dataclass(frozen=True, slots=True)
class BlockOp:
    """One disk-level operation produced by file-to-block preprocessing.

    Attributes:
        time: seconds since the start of the trace.
        op: the operation kind.
        file_id: originating file (drives the simulator's same-file
            no-seek optimisation, paper section 4.2).
        blocks: device block numbers touched, in transfer order.  For
            ``DELETE`` these are the blocks being freed.
        size: transfer length in bytes (block-aligned requests may be
            slightly larger than the original file-level size).
    """

    time: float
    op: Operation
    file_id: int
    blocks: tuple[int, ...] = field(default_factory=tuple)
    size: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"block op time must be >= 0, got {self.time}")
        if self.op is not Operation.DELETE and not self.blocks:
            raise TraceError("read/write block ops must touch >= 1 block")

    @property
    def nblocks(self) -> int:
        """Number of device blocks touched."""
        return len(self.blocks)
