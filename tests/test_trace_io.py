"""Trace (de)serialisation."""

import pytest

from repro.errors import TraceError
from repro.traces.io import load_trace, save_trace
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace


@pytest.fixture
def trace():
    return Trace(
        "roundtrip",
        [
            TraceRecord(time=0.0, op=Operation.WRITE, file_id=1, offset=0, size=1024),
            TraceRecord(time=0.5, op=Operation.READ, file_id=1, offset=512, size=512),
            TraceRecord(time=1.0, op=Operation.DELETE, file_id=1),
        ],
        block_size=512,
    )


def test_roundtrip_plain(tmp_path, trace):
    path = tmp_path / "trace.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == "roundtrip"
    assert loaded.block_size == 512
    assert len(loaded) == 3
    assert loaded[1].offset == 512
    assert loaded[2].op is Operation.DELETE


def test_roundtrip_gzip(tmp_path, trace):
    path = tmp_path / "trace.txt.gz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == 3


def test_times_preserved(tmp_path, trace):
    path = tmp_path / "trace.txt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert [r.time for r in loaded] == pytest.approx([r.time for r in trace])


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text(
        "# a comment\n"
        "\n"
        "0.0 read 1 0 1024\n"
        "# another\n"
        "1.0 write 2 0 512\n"
    )
    loaded = load_trace(path)
    assert len(loaded) == 2


def test_header_sets_name_and_block_size(tmp_path):
    path = tmp_path / "x.txt"
    path.write_text("#! name=custom block_size=2048\n0.0 read 1 0 2048\n")
    loaded = load_trace(path)
    assert loaded.name == "custom"
    assert loaded.block_size == 2048


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0.0 read 1 0\n")
    with pytest.raises(TraceError):
        load_trace(path)


def test_bad_operation_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0.0 frobnicate 1 0 1024\n")
    with pytest.raises(TraceError):
        load_trace(path)


def test_default_name_is_stem(tmp_path):
    path = tmp_path / "mytrace.txt"
    path.write_text("0.0 read 1 0 1024\n")
    assert load_trace(path).name == "mytrace"


# -- error provenance: every parse failure names the offending line --------


def test_duplicate_header_rejected(tmp_path):
    path = tmp_path / "dup.txt"
    path.write_text(
        "#! name=one block_size=1024\n"
        "0.0 read 1 0 1024\n"
        "#! name=two block_size=512\n"
    )
    with pytest.raises(TraceError, match=r"dup\.txt:3: duplicate '#!' header"):
        load_trace(path)


def test_bad_header_block_size_names_line(tmp_path):
    path = tmp_path / "hdr.txt"
    path.write_text("# leading comment\n#! name=x block_size=banana\n")
    with pytest.raises(TraceError, match=r"hdr\.txt:2: bad block_size 'banana'"):
        load_trace(path)


def test_nonpositive_header_block_size_names_line(tmp_path):
    path = tmp_path / "hdr.txt"
    path.write_text("#! block_size=0\n")
    with pytest.raises(TraceError, match=r"hdr\.txt:1: block_size must be positive"):
        load_trace(path)


def test_malformed_line_error_names_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0.0 read 1 0 1024\n0.5 read 1 0\n")
    with pytest.raises(TraceError, match=r"bad\.txt:2: expected 5 fields"):
        load_trace(path)


def test_record_invariant_violation_names_line(tmp_path):
    # Field types parse fine; the TraceRecord invariant (a delete carries
    # no payload) is what rejects the line — still with provenance.
    path = tmp_path / "inv.txt"
    path.write_text("0.0 read 1 0 1024\n1.0 delete 1 0 512\n")
    with pytest.raises(TraceError, match=r"inv\.txt:2: "):
        load_trace(path)


def test_zero_size_read_names_line(tmp_path):
    path = tmp_path / "zs.txt"
    path.write_text("0.0 read 1 0 0\n")
    with pytest.raises(TraceError, match=r"zs\.txt:1: "):
        load_trace(path)


def test_time_backwards_names_line(tmp_path):
    path = tmp_path / "rev.txt"
    path.write_text("1.0 read 1 0 1024\n0.5 read 1 0 1024\n")
    with pytest.raises(TraceError, match=r"rev\.txt:2: time runs backwards"):
        load_trace(path)
