"""SimulationResult export and runner output plumbing."""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.experiments.runner import main as runner_main


@pytest.fixture(scope="module")
def result(small_synth_trace=None):
    from repro.traces.synthetic import SyntheticWorkload

    trace = SyntheticWorkload().generate(n_ops=800, seed=5)
    return simulate(trace, SimulationConfig(device="intel-datasheet"))


class TestToDict:
    def test_round_trips_through_json(self, result):
        record = json.loads(json.dumps(result.to_dict(), default=str))
        assert record["device"] == "intel-datasheet"
        assert record["energy_j"] > 0

    def test_contains_response_percentiles(self, result):
        record = result.to_dict()
        for op in ("read", "write", "overall"):
            assert set(record[op]) >= {"mean_ms", "p95_ms", "p99_ms", "max_ms"}

    def test_contains_wear_for_flash(self, result):
        assert "wear" in result.to_dict()

    def test_no_wear_for_disk(self):
        from repro.traces.synthetic import SyntheticWorkload

        trace = SyntheticWorkload().generate(n_ops=400, seed=5)
        disk = simulate(trace, SimulationConfig(device="cu140-datasheet"))
        assert "wear" not in disk.to_dict()

    def test_config_echoed(self, result):
        assert result.to_dict()["config"]["device"] == "intel-datasheet"

    def test_save_json(self, result, tmp_path):
        path = tmp_path / "result.json"
        result.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["energy_j"] == pytest.approx(result.energy_j)


class TestRunnerOutput:
    def test_output_file_written(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        code = runner_main(["table2", "--scale", "1.0", "--output", str(path)])
        assert code == 0
        text = path.read_text()
        assert "manufacturer specifications" in text
        # Also printed to stdout.
        assert "manufacturer specifications" in capsys.readouterr().out

    def test_list_flag(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "flashcache" in out
        assert "ablation-leveling" in out
