"""DRAM cache eviction policies."""

import pytest

from repro.cache.policies import FifoPolicy, LruPolicy, RandomPolicy, eviction_policy
from repro.errors import ConfigurationError


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        for block in (1, 2, 3):
            policy.insert(block)
        policy.touch(1)
        assert policy.evict() == 2

    def test_insert_refreshes_recency(self):
        policy = LruPolicy()
        policy.insert(1)
        policy.insert(2)
        policy.insert(1)
        assert policy.evict() == 2

    def test_remove(self):
        policy = LruPolicy()
        policy.insert(1)
        policy.insert(2)
        policy.remove(1)
        assert 1 not in policy
        assert len(policy) == 1

    def test_remove_missing_is_noop(self):
        policy = LruPolicy()
        policy.remove(42)

    def test_contains(self):
        policy = LruPolicy()
        policy.insert(5)
        assert 5 in policy
        assert 6 not in policy


class TestFifo:
    def test_evicts_in_insertion_order(self):
        policy = FifoPolicy()
        for block in (1, 2, 3):
            policy.insert(block)
        policy.touch(1)  # FIFO ignores touches
        assert policy.evict() == 1

    def test_reinsert_keeps_original_position(self):
        policy = FifoPolicy()
        policy.insert(1)
        policy.insert(2)
        policy.insert(1)
        assert policy.evict() == 1


class TestRandom:
    def test_eviction_is_member(self):
        policy = RandomPolicy(seed=3)
        for block in range(10):
            policy.insert(block)
        victim = policy.evict()
        assert 0 <= victim < 10
        assert victim not in policy

    def test_deterministic_with_seed(self):
        def victims(seed):
            policy = RandomPolicy(seed=seed)
            for block in range(10):
                policy.insert(block)
            return [policy.evict() for _ in range(5)]

        assert victims(7) == victims(7)

    def test_remove_then_len(self):
        policy = RandomPolicy()
        for block in range(5):
            policy.insert(block)
        policy.remove(2)
        assert len(policy) == 4
        assert 2 not in policy


def test_factory():
    assert isinstance(eviction_policy("lru"), LruPolicy)
    assert isinstance(eviction_policy("fifo"), FifoPolicy)
    assert isinstance(eviction_policy("random"), RandomPolicy)


def test_factory_unknown():
    with pytest.raises(ConfigurationError):
        eviction_policy("clock")
