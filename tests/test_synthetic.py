"""The paper's synth workload generator (section 4.1)."""

import pytest

from repro.errors import TraceError
from repro.traces.record import Operation
from repro.traces.synthetic import SyntheticWorkload
from repro.units import KB


@pytest.fixture(scope="module")
def trace():
    return SyntheticWorkload().generate(n_ops=6000, seed=1)


def test_dataset_geometry():
    workload = SyntheticWorkload()
    assert workload.n_files == 192  # 6 MB of 32 KB files


def test_operation_mix(trace):
    counts = trace.operation_counts()
    total = len(trace)
    assert counts[Operation.READ] / total == pytest.approx(0.60, abs=0.03)
    assert counts[Operation.WRITE] / total == pytest.approx(0.35, abs=0.03)
    assert counts[Operation.DELETE] / total == pytest.approx(0.05, abs=0.02)


def test_sizes_within_file_bounds(trace):
    for record in trace:
        if record.op is not Operation.DELETE:
            assert 0 < record.size <= 32 * KB
            assert record.end_offset <= 32 * KB


def test_small_size_bucket_fraction(trace):
    sizes = [r.size for r in trace if r.op is not Operation.DELETE]
    small = sum(1 for s in sizes if s == 512)
    # 40% of accesses are 0.5 KB (erase-recreate writes dilute slightly).
    assert small / len(sizes) == pytest.approx(0.40, abs=0.06)


def test_large_size_bucket_fraction(trace):
    sizes = [r.size for r in trace if r.op is not Operation.DELETE]
    large = sum(1 for s in sizes if s > 16 * KB)
    assert large / len(sizes) == pytest.approx(0.20, abs=0.06)


def test_hot_cold_skew(trace):
    workload = SyntheticWorkload()
    n_hot = round(workload.n_files * workload.hot_data_fraction)
    hot_accesses = sum(1 for r in trace if r.file_id < n_hot)
    assert hot_accesses / len(trace) == pytest.approx(7 / 8, abs=0.05)


def test_interarrival_bimodal(trace):
    gaps = [trace[i + 1].time - trace[i].time for i in range(len(trace) - 1)]
    mean = sum(gaps) / len(gaps)
    # 90% at ~10 ms + 10% at ~3 s => mean ~ 0.31 s.
    assert 0.15 < mean < 0.6
    assert max(gaps) > 1.0  # tail draws present


def test_write_after_erase_recreates_whole_file(trace):
    erased = set()
    seen = False
    for record in trace:
        if record.op is Operation.DELETE:
            erased.add(record.file_id)
        elif record.op is Operation.WRITE and record.file_id in erased:
            assert record.offset == 0
            assert record.size == 32 * KB
            erased.discard(record.file_id)
            seen = True
        elif record.op is Operation.READ:
            assert record.file_id not in erased
    assert seen, "no erase-then-write sequence exercised"


def test_determinism():
    a = SyntheticWorkload().generate(n_ops=500, seed=9)
    b = SyntheticWorkload().generate(n_ops=500, seed=9)
    assert [(r.time, r.op, r.file_id, r.offset, r.size) for r in a] == [
        (r.time, r.op, r.file_id, r.offset, r.size) for r in b
    ]


def test_different_seeds_differ():
    a = SyntheticWorkload().generate(n_ops=500, seed=1)
    b = SyntheticWorkload().generate(n_ops=500, seed=2)
    assert [r.file_id for r in a] != [r.file_id for r in b]


def test_invalid_fractions_rejected():
    with pytest.raises(TraceError):
        SyntheticWorkload(read_fraction=0.8, write_fraction=0.3)


def test_misaligned_total_rejected():
    with pytest.raises(TraceError):
        SyntheticWorkload(total_bytes=100 * KB, file_bytes=32 * KB)
