"""The job service: manager lifecycle, backpressure, the HTTP surface,
chaos survival under the service, and service-vs-CLI byte identity."""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import ChaosAction, ChaosPlan, ExecutionPolicy, ResultCache
from repro.errors import ConfigurationError
from repro.fleet import FleetSpec, canonical_json, run_fleet
from repro.serve import (
    CANCELLED,
    DONE,
    JobManager,
    QUEUED,
    QueueFullError,
    parse_request,
)
from repro.serve.http import run_server

#: One small fleet request reused across tests.
FLEET_BODY = {"kind": "fleet", "devices": 12, "seed": 4, "scale": 0.1,
              "ops": 150}


def wait_terminal(job, timeout=120.0):
    deadline = time.time() + timeout
    while not job.terminal and time.time() < deadline:
        time.sleep(0.05)
    assert job.terminal, f"job stuck in {job.state}"
    return job


# -- request validation ----------------------------------------------------


class TestParseRequest:
    def test_fleet_defaults(self):
        request = parse_request({"kind": "fleet"})
        assert request["devices"] == 100
        assert request["kind"] == "fleet"

    def test_rejects_non_object(self):
        with pytest.raises(ConfigurationError):
            parse_request([1, 2])

    def test_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "nope"})
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "fleet", "bogus": 1})

    def test_rejects_bad_scale_and_devices(self):
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "fleet", "scale": 0.0})
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "fleet", "devices": 0})
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "fleet", "devices": True})

    def test_run_requires_known_experiments(self):
        request = parse_request({"kind": "run", "experiments": ["table2"],
                                 "seeds": [1, 2]})
        assert request["experiments"] == ["table2"]
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "run", "experiments": []})
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "run", "experiments": ["no-such"]})
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "run", "experiments": ["table2"],
                           "seeds": ["x"]})


# -- manager (no HTTP) -----------------------------------------------------


class TestJobManager:
    def test_backpressure_raises_queue_full(self, tmp_path):
        manager = JobManager(spool_dir=tmp_path, jobs=1, queue_limit=2,
                             start=False)
        manager.submit(FLEET_BODY)
        manager.submit(FLEET_BODY)
        with pytest.raises(QueueFullError):
            manager.submit(FLEET_BODY)
        prom = manager.metrics.to_prometheus()
        assert "repro_serve_jobs_rejected_total 1" in prom
        assert "repro_serve_jobs_submitted_total 2" in prom

    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(spool_dir=tmp_path, jobs=1, start=False)
        job = manager.submit(FLEET_BODY)
        assert job.state == QUEUED
        manager.cancel(job.id)
        assert job.state == CANCELLED

    def test_job_lifecycle_and_events(self, tmp_path):
        manager = JobManager(spool_dir=tmp_path, jobs=1)
        try:
            job = manager.submit(FLEET_BODY)
            wait_terminal(job)
            assert job.state == DONE
            summary = job.result["summary"]
            assert summary["population"]["devices"] == FLEET_BODY["devices"]
            records = [event["record"] for event in job.events_after(0)]
            assert records[0] == "job"          # queued
            assert "run" in records             # manifest run header
            assert "unit" in records            # per-shard progress
            assert records[-1] == "job"         # terminal marker
            # The on-disk manifest holds the same engine records.
            with open(job.manifest_path) as stream:
                disk = [json.loads(line)["record"] for line in stream]
            assert disk == [r for r in records if r != "job"]
        finally:
            manager.shutdown()

    def test_shutdown_cancels_everything(self, tmp_path):
        manager = JobManager(spool_dir=tmp_path, jobs=1, queue_limit=4)
        try:
            # Many shards: the serial path cancels between units, so each
            # shard must be small enough to finish within the join grace.
            slow = manager.submit({"kind": "fleet", "devices": 4000,
                                   "scale": 0.3, "ops": 400, "shards": 64})
            queued = manager.submit(FLEET_BODY)
            time.sleep(0.3)  # let the runner pick up the slow job
        finally:
            manager.shutdown(timeout=60.0)
        wait_terminal(slow)
        wait_terminal(queued)

    def test_run_kind_job(self, tmp_path):
        manager = JobManager(spool_dir=tmp_path, jobs=1)
        try:
            job = manager.submit({"kind": "run", "experiments": ["table2"],
                                  "scale": 0.05})
            wait_terminal(job)
            assert job.state == DONE
            assert job.result["counts"]["ok"] == 1
        finally:
            manager.shutdown()

    def test_chaos_kill_under_service(self, tmp_path):
        """A chaos-killed worker must not fail the job — the shard is
        re-queued and the population summary still matches serial."""
        plan = ChaosPlan(
            seed=1, state_dir=str(tmp_path / "chaos"),
            actions=(ChaosAction("kill", "fleet", seed=4),),
        )
        manager = JobManager(
            spool_dir=tmp_path, cache=ResultCache(tmp_path / "cache"),
            jobs=2, policy=ExecutionPolicy(retries=1), chaos=plan,
        )
        try:
            job = manager.submit(dict(FLEET_BODY, shards=4))
            wait_terminal(job, timeout=240.0)
            assert job.state == DONE
            assert job.result["counts"]["requeued"] >= 1
            reference = run_fleet(
                FleetSpec(devices=FLEET_BODY["devices"],
                          seed=FLEET_BODY["seed"],
                          scale=FLEET_BODY["scale"],
                          ops_per_device=FLEET_BODY["ops"]),
                jobs=1,
            )
            assert canonical_json(job.result["summary"]) == canonical_json(
                reference.summary
            )
        finally:
            manager.shutdown()


# -- HTTP surface ----------------------------------------------------------


class _Server:
    """run_server on a private event loop thread, ephemeral port."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._stop: asyncio.Event | None = None
        self._bound = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._bound.wait(10), "server did not bind"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())

    async def _main(self) -> None:
        self._stop = asyncio.Event()

        def bound(port: int) -> None:
            self.port = port
            self._bound.set()

        await run_server(self.manager, "127.0.0.1", 0, stop=self._stop,
                         install_signal_handlers=False, on_bound=bound)

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    # -- tiny client -------------------------------------------------------

    def request(self, method: str, path: str, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, dict(resp.headers), resp.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read().decode()

    def stream(self, path: str):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{self.port}{path}", timeout=120
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in resp]


@pytest.fixture
def server(tmp_path):
    manager = JobManager(
        spool_dir=tmp_path / "spool", cache=ResultCache(tmp_path / "cache"),
        jobs=1, queue_limit=2,
    )
    srv = _Server(manager)
    yield srv
    srv.close()


class TestHttp:
    def test_healthz(self, server):
        status, _, body = server.request("GET", "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_submit_poll_stream(self, server):
        status, _, body = server.request("POST", "/jobs", FLEET_BODY)
        assert status == 201
        job = json.loads(body)
        assert job["state"] in ("queued", "running")

        events = server.stream(f"/jobs/{job['id']}/events")
        assert events[-1]["record"] == "job"
        assert events[-1]["state"] == "done"
        assert any(event["record"] == "unit" for event in events)

        status, _, body = server.request("GET", f"/jobs/{job['id']}")
        snapshot = json.loads(body)
        assert snapshot["state"] == "done"
        assert (snapshot["result"]["summary"]["population"]["devices"]
                == FLEET_BODY["devices"])
        # Resuming the stream from a cursor yields only the tail.
        tail = server.stream(
            f"/jobs/{job['id']}/events?from={len(events) - 1}"
        )
        assert tail == events[-1:]

    def test_fleet_over_http_matches_serial_cli_path(self, server):
        """The acceptance criterion: a fleet job over HTTP is
        byte-identical to the same fleet via run_fleet(jobs=1)."""
        status, _, body = server.request("POST", "/jobs", FLEET_BODY)
        assert status == 201
        job_id = json.loads(body)["id"]
        server.stream(f"/jobs/{job_id}/events")  # wait for completion
        _, _, body = server.request("GET", f"/jobs/{job_id}")
        via_http = json.loads(body)["result"]["summary"]
        reference = run_fleet(
            FleetSpec(devices=FLEET_BODY["devices"], seed=FLEET_BODY["seed"],
                      scale=FLEET_BODY["scale"],
                      ops_per_device=FLEET_BODY["ops"]),
            jobs=1,
        )
        assert canonical_json(via_http) == canonical_json(reference.summary)

    def test_backpressure_429_with_retry_after(self, server, tmp_path):
        # Saturate: one slow job runs, two sit in the queue, next is 429.
        server.request("POST", "/jobs", {"kind": "fleet", "devices": 3000,
                                         "scale": 0.3, "ops": 400})
        server.request("POST", "/jobs", FLEET_BODY)
        server.request("POST", "/jobs", FLEET_BODY)
        status, headers, body = server.request("POST", "/jobs", FLEET_BODY)
        assert status == 429
        assert headers.get("Retry-After") == "2"
        assert "queue full" in json.loads(body)["error"]

    def test_cancel_running_job(self, server):
        status, _, body = server.request(
            "POST", "/jobs",
            {"kind": "fleet", "devices": 3000, "scale": 0.3, "ops": 400,
             "shards": 64},  # cancellation lands between shard units
        )
        job_id = json.loads(body)["id"]
        time.sleep(0.5)
        status, _, _ = server.request("POST", f"/jobs/{job_id}/cancel")
        assert status == 200
        job = wait_terminal(server.manager.get(job_id))
        assert job.state == "cancelled"

    def test_bad_requests(self, server):
        assert server.request("POST", "/jobs", {"kind": "nope"})[0] == 400
        assert server.request("GET", "/jobs/zzz")[0] == 404
        assert server.request("GET", "/nothing")[0] == 404
        assert server.request("PUT", "/jobs/zzz")[0] == 404

    def test_metrics_scrape_format(self, server):
        server.request("POST", "/jobs", FLEET_BODY)
        status, headers, text = server.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        lines = text.splitlines()
        assert "# TYPE repro_serve_jobs_submitted_total counter" in lines
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert any(line.startswith("repro_serve_jobs_submitted_total ")
                   for line in lines)
        # Prometheus text format: every non-comment line is `name value`.
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)

    def test_jobs_listing(self, server):
        server.request("POST", "/jobs", FLEET_BODY)
        status, _, body = server.request("GET", "/jobs")
        assert status == 200
        assert len(json.loads(body)["jobs"]) >= 1
