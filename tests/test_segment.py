"""Flash segment state machine."""

import pytest

from repro.errors import DeviceError
from repro.flash.segment import Segment


def test_initial_state_is_erased():
    segment = Segment(0, 32)
    assert segment.is_erased
    assert segment.free_blocks == 32
    assert segment.live_blocks == 0
    assert segment.dead_blocks == 0


def test_allocate_moves_free_to_live():
    segment = Segment(0, 4)
    segment.allocate(7, now=1.0)
    assert segment.free_blocks == 3
    assert segment.live_blocks == 1
    assert 7 in segment.live
    assert segment.last_write_time == 1.0


def test_allocate_when_full_raises():
    segment = Segment(0, 1)
    segment.allocate(1, 0.0)
    with pytest.raises(DeviceError):
        segment.allocate(2, 0.0)


def test_double_allocate_same_logical_raises():
    segment = Segment(0, 4)
    segment.allocate(1, 0.0)
    with pytest.raises(DeviceError):
        segment.allocate(1, 0.0)


def test_invalidate_moves_live_to_dead():
    segment = Segment(0, 4)
    segment.allocate(1, 0.0)
    segment.invalidate(1)
    assert segment.dead_blocks == 1
    assert segment.live_blocks == 0


def test_invalidate_unknown_raises():
    segment = Segment(0, 4)
    with pytest.raises(DeviceError):
        segment.invalidate(9)


def test_erase_requires_no_live_data():
    segment = Segment(0, 4)
    segment.allocate(1, 0.0)
    with pytest.raises(DeviceError):
        segment.erase()


def test_erase_resets_and_counts():
    segment = Segment(0, 4)
    segment.allocate(1, 0.0)
    segment.invalidate(1)
    segment.erase()
    assert segment.is_erased
    assert segment.erase_count == 1
    segment.allocate(2, 0.0)
    segment.invalidate(2)
    segment.erase()
    assert segment.erase_count == 2


def test_utilization():
    segment = Segment(0, 4)
    segment.allocate(1, 0.0)
    segment.allocate(2, 0.0)
    assert segment.utilization == pytest.approx(0.5)


def test_is_full():
    segment = Segment(0, 2)
    segment.allocate(1, 0.0)
    assert not segment.is_full
    segment.allocate(2, 0.0)
    assert segment.is_full


def test_invariant_holds_through_lifecycle():
    segment = Segment(0, 8)
    for logical in range(8):
        segment.allocate(logical, 0.0)
        segment.check_invariant()
    for logical in range(8):
        segment.invalidate(logical)
        segment.check_invariant()
    segment.erase()
    segment.check_invariant()


def test_zero_capacity_rejected():
    with pytest.raises(DeviceError):
        Segment(0, 0)
