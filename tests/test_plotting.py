"""ASCII chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plotting import ascii_chart, chart_from_rows, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_monotone_series_monotone_levels(self):
        from repro.experiments.plotting import _SPARK_LEVELS

        line = sparkline([0, 1, 2, 3, 4, 5])
        levels = [_SPARK_LEVELS.index(glyph) for glyph in line]
        assert levels == sorted(levels)

    def test_resampled_to_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_extremes_map_to_extreme_glyphs(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == " "
        assert line[-1] == "@"


class TestAsciiChart:
    def test_contains_title_axes_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            title="demo chart", x_label="x", y_label="y",
        )
        assert "demo chart" in chart
        assert "o=a" in chart
        assert "x=b" in chart
        assert "|" in chart and "+" in chart

    def test_markers_placed_at_extremes(self):
        chart = ascii_chart({"a": [(0, 0), (10, 10)]}, width=20, height=10)
        lines = [l for l in chart.splitlines() if "|" in l]
        assert "o" in lines[0]  # max y on the top row
        assert "o" in lines[-1]  # min y on the bottom row

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})

    def test_no_points_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [(0, 0)]}, width=2, height=2)

    def test_degenerate_single_point(self):
        chart = ascii_chart({"a": [(1.0, 2.0)]})
        assert "o" in chart


class TestChartFromRows:
    def test_groups_rows_by_label(self):
        rows = [("s1", 0, 1.0), ("s1", 1, 2.0), ("s2", 0, 3.0)]
        chart = chart_from_rows(rows, 0, 1, 2, title="t")
        assert "o=s1" in chart
        assert "x=s2" in chart
