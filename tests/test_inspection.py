"""``repro inspect``: per-layer attribution reports for experiments."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.errors import ConfigurationError
from repro.experiments.inspection import (
    inspect_experiment,
    probes_for,
)


def test_inspect_components_sum_to_totals():
    report, ok = inspect_experiment("validation", scale=0.05)
    assert ok, "per-layer components must sum to the run totals"
    text = report.render()
    assert "layer" in text
    assert "device" in text
    assert "total" in text


def test_inspect_flash_probe_reports_cleaning_layer():
    # table4's default probes include a flash card, whose reclamation work
    # must surface as the attributed `cleaning` pseudo-layer.
    report, ok = inspect_experiment("table4", scale=0.02)
    assert ok
    text = report.render()
    assert "cleaning" in text
    assert "intel-datasheet" in text


def test_inspect_unknown_experiment_raises():
    with pytest.raises(ConfigurationError):
        inspect_experiment("does-not-exist")


def test_inspect_no_simulation_experiments_fall_back():
    report, ok = inspect_experiment("table2", scale=0.02)
    assert ok
    assert any("no storage simulation" in note for note in report.notes)


def test_probe_registry_keys_are_real_experiment_ids():
    from repro.experiments.inspection import _NO_SIMULATION, _PROBES
    from repro.experiments.registry import all_experiments

    known = set(all_experiments())
    assert set(_PROBES) <= known
    assert set(_NO_SIMULATION) <= known


def test_probe_registry_covers_specialized_experiments():
    assert probes_for("fig5") != probes_for("table4")
    labels = [probe.label for probe in probes_for("fig5")]
    assert any("SRAM" in label for label in labels)


def test_inspect_cli_prints_breakdown(capsys):
    code = main(["inspect", "validation", "--scale", "0.05"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Per-layer attribution" in out
    assert "energy J" in out


def test_inspect_cli_unknown_experiment_errors(capsys):
    code = main(["inspect", "nope"])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err
