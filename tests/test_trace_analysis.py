"""Trace analysis toolkit."""

import pytest

from repro.traces.analysis import (
    burstiness,
    lru_hit_rate,
    reuse_distances,
    sequentiality,
    working_set_curve,
    write_concentration,
)
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace
from repro.units import KB


def make_trace(specs, block_size=KB):
    """specs: list of (time, op, file, offset_blocks, size_blocks)."""
    records = []
    for time, op, file_id, offset, size in specs:
        if op is Operation.DELETE:
            records.append(TraceRecord(time=time, op=op, file_id=file_id))
        else:
            records.append(
                TraceRecord(
                    time=time, op=op, file_id=file_id,
                    offset=offset * block_size, size=size * block_size,
                )
            )
    return Trace("analysis", records, block_size=block_size)


R, W, D = Operation.READ, Operation.WRITE, Operation.DELETE


class TestWorkingSet:
    def test_single_window(self):
        trace = make_trace([(0, R, 1, 0, 2), (1, R, 2, 0, 3)])
        points = working_set_curve(trace, window_s=10.0)
        assert len(points) == 1
        assert points[0].distinct_kbytes == 5.0
        assert points[0].operations == 2

    def test_windows_split(self):
        trace = make_trace([(0, R, 1, 0, 1), (12, R, 2, 0, 1)])
        points = working_set_curve(trace, window_s=10.0)
        assert len(points) == 2
        assert points[0].distinct_kbytes == 1.0
        assert points[1].distinct_kbytes == 1.0

    def test_rereferences_not_double_counted(self):
        trace = make_trace([(0, R, 1, 0, 1), (1, W, 1, 0, 1)])
        points = working_set_curve(trace, window_s=10.0)
        assert points[0].distinct_kbytes == 1.0

    def test_deletes_ignored(self):
        trace = make_trace([(0, R, 1, 0, 1), (1, D, 1, 0, 0)])
        points = working_set_curve(trace, window_s=10.0)
        assert points[0].operations == 1


class TestReuseDistances:
    def test_immediate_rereference_distance_zero(self):
        trace = make_trace([(0, R, 1, 0, 1), (1, R, 1, 0, 1)])
        assert reuse_distances(trace) == [0]

    def test_distance_counts_intervening_blocks(self):
        trace = make_trace([
            (0, R, 1, 0, 1),  # A
            (1, R, 2, 0, 1),  # B
            (2, R, 3, 0, 1),  # C
            (3, R, 1, 0, 1),  # A again: B and C in between -> distance 2
        ])
        assert reuse_distances(trace) == [2]

    def test_first_touches_excluded(self):
        trace = make_trace([(0, R, 1, 0, 3)])
        assert reuse_distances(trace) == []

    def test_lru_hit_rate_matches_distances(self):
        trace = make_trace([
            (0, R, 1, 0, 1),
            (1, R, 2, 0, 1),
            (2, R, 1, 0, 1),  # distance 1: hit iff capacity > 1
        ])
        assert lru_hit_rate(trace, cache_blocks=2) == pytest.approx(1 / 3)
        assert lru_hit_rate(trace, cache_blocks=1) == 0.0

    def test_hit_rate_monotone_in_capacity(self, small_mac_trace):
        small = lru_hit_rate(small_mac_trace, 64)
        large = lru_hit_rate(small_mac_trace, 2048)
        assert large >= small


class TestWriteConcentration:
    def test_uniform_writes(self):
        trace = make_trace([(i, W, i, 0, 1) for i in range(10)])
        stats = write_concentration(trace)
        assert stats.rewrite_factor == 1.0
        assert stats.distinct_blocks_written == 10
        assert stats.hot_fraction_for_90pct == pytest.approx(0.9)

    def test_concentrated_writes(self):
        specs = [(i, W, 1, 0, 1) for i in range(9)] + [(9, W, 2, 0, 1)]
        stats = write_concentration(make_trace(specs))
        assert stats.rewrite_factor == pytest.approx(5.0)
        assert stats.hot_fraction_for_90pct == pytest.approx(0.5)

    def test_reads_ignored(self):
        trace = make_trace([(0, R, 1, 0, 5)])
        assert write_concentration(trace).write_block_events == 0


class TestSequentiality:
    def test_fully_sequential(self):
        trace = make_trace([(0, R, 1, 0, 2), (1, R, 1, 2, 2), (2, R, 1, 4, 2)])
        assert sequentiality(trace) == pytest.approx(2 / 3)

    def test_random_pattern(self):
        trace = make_trace([(0, R, 1, 0, 1), (1, R, 2, 5, 1), (2, R, 1, 3, 1)])
        assert sequentiality(trace) == 0.0


class TestBurstiness:
    def test_gap_statistics(self):
        trace = make_trace([(0, R, 1, 0, 1), (1, R, 1, 0, 1), (11, R, 1, 0, 1)])
        stats = burstiness(trace, long_gap_s=5.0)
        assert stats.mean_gap_s == pytest.approx(5.5)
        assert stats.max_gap_s == pytest.approx(10.0)
        assert stats.long_gap_fraction == pytest.approx(0.5)
        assert stats.long_gap_time_fraction == pytest.approx(10 / 11)

    def test_empty_trace(self):
        stats = burstiness(Trace("e", [], block_size=KB))
        assert stats.mean_gap_s == 0.0

    def test_hp_workload_sleeps_most_of_the_time(self):
        """The hp calibration target: long gaps dominate wall time."""
        from repro.traces.workloads import HpWorkload

        trace = HpWorkload().generate(seed=2, n_ops=3000)
        stats = burstiness(trace, long_gap_s=5.0)
        assert stats.long_gap_time_fraction > 0.5
