"""The parallel, cache-aware execution engine (repro.engine)."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    EngineError,
    ResultCache,
    RunManifest,
    TraceStore,
    WorkUnit,
    cache_key,
    decompose,
    device_fingerprint,
    execute,
    freeze_kwargs,
    raise_on_errors,
    read_manifest,
    run_unit_inline,
    summarize,
)
from repro.engine.manifest import UNIT_FIELDS
from repro.errors import ConfigurationError
from repro.experiments import traces_cache
from repro.experiments.base import Experiment, ExperimentResult, Table
from repro.experiments.registry import _EXPERIMENTS
from repro.experiments.runner import run_experiment

#: cheap drivers for end-to-end scheduling tests (table2 is static,
#: fig4 simulates the short dos trace)
FAST_IDS = ("table2", "fig4")
SMALL = 0.05


# -- work units ------------------------------------------------------------

class TestWorkUnit:
    def test_decompose_cross_product(self):
        units = decompose(["a", "b"], scale=0.5, seeds=(1, 2, 3))
        assert len(units) == 6
        assert {unit.experiment_id for unit in units} == {"a", "b"}
        assert {unit.seed for unit in units} == {1, 2, 3}

    def test_decompose_deduplicates(self):
        units = decompose(["a", "a"], scale=0.5, seeds=(1, 1))
        assert len(units) == 1

    def test_decompose_empty_seeds_means_default(self):
        units = decompose(["a"], scale=0.5, seeds=())
        assert [unit.seed for unit in units] == [None]

    def test_scale_validated(self):
        with pytest.raises(ConfigurationError):
            WorkUnit("a", scale=0.0)
        with pytest.raises(ConfigurationError):
            WorkUnit("a", scale=1.5)

    def test_freeze_kwargs_sorts_and_hashes(self):
        frozen = freeze_kwargs({"b": [1, 2], "a": "x"})
        assert frozen == (("a", "x"), ("b", (1, 2)))
        hash(frozen)  # must be hashable

    def test_label_names_the_unit(self):
        unit = WorkUnit("table4", scale=0.2, seed=7)
        assert "table4" in unit.label
        assert "seed=7" in unit.label


# -- cache keys ------------------------------------------------------------

class TestCacheKey:
    def test_stable_for_identical_units(self):
        a = WorkUnit("table4", scale=0.2, seed=1)
        b = WorkUnit("table4", scale=0.2, seed=1)
        assert cache_key(a) == cache_key(b)

    @pytest.mark.parametrize("variant", [
        WorkUnit("table4", scale=0.3, seed=1),
        WorkUnit("table4", scale=0.2, seed=2),
        WorkUnit("table4", scale=0.2, seed=None),
        WorkUnit("fig2", scale=0.2, seed=1),
        WorkUnit("table4", scale=0.2, seed=1,
                 kwargs=freeze_kwargs({"traces": ("mac",)})),
    ])
    def test_changes_on_any_input(self, variant):
        base = WorkUnit("table4", scale=0.2, seed=1)
        assert cache_key(base) != cache_key(variant)

    def test_changes_on_fingerprint_and_version(self):
        unit = WorkUnit("table4", scale=0.2, seed=1)
        base = cache_key(unit)
        assert cache_key(unit, fingerprint="different") != base
        assert cache_key(unit, version="99.0") != base

    def test_device_fingerprint_is_short_stable_hex(self):
        assert device_fingerprint() == device_fingerprint()
        int(device_fingerprint(), 16)


# -- result cache ----------------------------------------------------------

@pytest.fixture
def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo",
        tables=(
            Table("t", ("k", "v"), (("one", 1), ("two", 2.5), ("big", 10_000.0))),
        ),
        notes=("note one",),
        charts=("<chart>",),
        scale=0.25,
    )


class TestResultCache:
    def test_round_trip_renders_identically(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, sample_result)
        loaded = cache.get("ab" + "0" * 62)
        assert loaded is not None
        assert loaded.render() == sample_result.render()
        assert loaded == sample_result

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ff" + "0" * 62) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put("ab" + "0" * 62, sample_result)
        path.write_text("{not json")
        assert cache.get("ab" + "0" * 62) is None

    def test_stats_and_clear(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, sample_result)
        cache.put("cd" + "0" * 62, sample_result)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.experiments == {"demo": 2}
        assert "entries" in stats.render()
        assert cache.clear() == 2
        assert cache.stats().entries == 0


# -- trace store -----------------------------------------------------------

class TestTraceStore:
    def test_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = traces_cache.trace_for("synth", SMALL)
        store.save(trace, "synth", SMALL, 1)
        loaded = store.load("synth", SMALL, 1)
        assert loaded is not None
        assert loaded.name == trace.name
        assert loaded.block_size == trace.block_size
        assert loaded.records == trace.records

    def test_missing_is_none(self, tmp_path):
        assert TraceStore(tmp_path).load("synth", 0.5, 9) is None

    def test_prewarm_generates_once(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.prewarm(("synth",), SMALL, 1) == 1
        assert store.prewarm(("synth",), SMALL, 1) == 0

    def test_configured_store_is_write_through(self, tmp_path):
        store = TraceStore(tmp_path)
        traces_cache.configure_trace_store(store)
        try:
            traces_cache._generate.cache_clear()
            trace = traces_cache.trace_for("synth", 0.031, seed=77)
            assert store.path_for("synth", 0.031, 77).exists()
            # A fresh process (simulated by clearing the in-memory cache)
            # loads the stored trace instead of regenerating.
            traces_cache._generate.cache_clear()
            reloaded = traces_cache.trace_for("synth", 0.031, seed=77)
            assert reloaded.records == trace.records
        finally:
            traces_cache.configure_trace_store(None)
            traces_cache._generate.cache_clear()


# -- manifest --------------------------------------------------------------

class TestManifest:
    def test_schema(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with RunManifest(path) as manifest:
            manifest.record_run(jobs=2, units=1, scale=0.2, seeds=(None,),
                                fingerprint="f", version="v", cache_dir=None)
            manifest.record_unit(
                WorkUnit("table2", scale=0.2), key="k", cache="miss",
                worker=123, wall_s=0.5, outcome="ok",
            )
        records = read_manifest(path)
        assert [record["record"] for record in records] == ["run", "unit"]
        run_record = records[0]
        for field in ("jobs", "units", "scale", "seeds", "fingerprint",
                      "version", "cache_dir", "started"):
            assert field in run_record
        unit_record = records[1]
        assert set(UNIT_FIELDS) <= set(unit_record)
        assert unit_record["experiment_id"] == "table2"
        assert unit_record["cache"] == "miss"
        assert unit_record["outcome"] == "ok"

    def test_appends_as_units_finish(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = RunManifest(path)
        manifest.record_unit(WorkUnit("a", scale=0.2), key="k", cache="off",
                             worker=1, wall_s=0.0, outcome="ok")
        # readable mid-run, before close
        assert len(read_manifest(path)) == 1
        manifest.close()


# -- scheduler -------------------------------------------------------------

class TestExecute:
    def test_serial_and_parallel_reports_identical(self, tmp_path):
        units = decompose(FAST_IDS, scale=SMALL)
        serial = execute(units, jobs=1)
        parallel = execute(units, jobs=2, trace_store=TraceStore(tmp_path))
        assert [outcome.unit for outcome in serial] == units
        for left, right in zip(serial, parallel):
            assert left.result.render() == right.result.render()

    def test_jobs_one_matches_run_experiment_exactly(self):
        unit = WorkUnit("fig4", scale=SMALL)
        [outcome] = execute([unit], jobs=1)
        direct = run_experiment("fig4", scale=SMALL)
        assert outcome.result.render() == direct.render()

    def test_cache_hits_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = decompose(FAST_IDS, scale=SMALL)
        first = execute(units, jobs=1, cache=cache)
        second = execute(units, jobs=1, cache=cache)
        assert summarize(first)["misses"] == len(units)
        assert summarize(second)["hits"] == len(units)
        for left, right in zip(first, second):
            assert left.result.render() == right.result.render()

    def test_key_changes_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([WorkUnit("table2", scale=SMALL)], jobs=1, cache=cache)
        rescaled = execute([WorkUnit("table2", scale=0.06)], jobs=1, cache=cache)
        reseeded = execute([WorkUnit("table2", scale=SMALL, seed=9)],
                           jobs=1, cache=cache)
        assert summarize(rescaled)["misses"] == 1
        assert summarize(reseeded)["misses"] == 1

    def test_manifest_records_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = decompose(("table2",), scale=SMALL)
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            execute(units, jobs=1, cache=cache, manifest=manifest)
            execute(units, jobs=1, cache=cache, manifest=manifest)
        unit_records = [record for record in read_manifest(tmp_path / "m.jsonl")
                        if record["record"] == "unit"]
        assert [record["cache"] for record in unit_records] == ["miss", "hit"]

    def test_progress_callback_sees_every_unit(self):
        seen = []
        units = decompose(("table2",), scale=SMALL, seeds=(1, 2))
        execute(units, jobs=1,
                progress=lambda done, total, outcome:
                seen.append((done, total, outcome.unit.seed)))
        assert seen == [(1, 2, 1), (2, 2, 2)]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(EngineError):
            execute([], jobs=0)

    def test_empty_units(self):
        assert execute([], jobs=1) == []


class TestFailureContainment:
    @pytest.fixture
    def broken_driver(self, monkeypatch):
        def explode(scale=1.0, seed=None):
            raise RuntimeError("injected driver failure")

        experiment = Experiment(
            experiment_id="broken", title="Broken", paper_ref="-", run=explode,
        )
        monkeypatch.setitem(_EXPERIMENTS, "broken", experiment)
        return experiment

    def test_error_is_contained_and_others_complete(self, tmp_path, broken_driver):
        cache = ResultCache(tmp_path)
        units = [WorkUnit("broken", scale=SMALL), WorkUnit("table2", scale=SMALL)]
        outcomes = execute(units, jobs=1, cache=cache)
        assert not outcomes[0].ok
        assert "injected driver failure" in outcomes[0].error
        assert outcomes[1].ok
        # the completed unit landed in the cache: a re-run resumes
        resumed = execute(units, jobs=1, cache=cache)
        assert summarize(resumed)["hits"] == 1

    def test_raise_on_errors(self, broken_driver):
        outcomes = execute([WorkUnit("broken", scale=SMALL)], jobs=1)
        with pytest.raises(EngineError, match="injected driver failure"):
            raise_on_errors(outcomes)

    def test_manifest_records_error(self, tmp_path, broken_driver):
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            execute([WorkUnit("broken", scale=SMALL)], jobs=1, manifest=manifest)
        [unit_record] = [record for record in read_manifest(tmp_path / "m.jsonl")
                         if record["record"] == "unit"]
        assert unit_record["outcome"] == "error"
        assert "injected driver failure" in unit_record["error"]


class TestRunUnitInline:
    def test_threads_seed_and_kwargs(self, monkeypatch):
        calls = []

        def probe(scale=1.0, seed=None, traces=()):
            calls.append((scale, seed, traces))
            return ExperimentResult("probe", "Probe", tables=(
                Table("t", ("a",), ((1,),)),
            ))

        monkeypatch.setitem(_EXPERIMENTS, "probe", Experiment(
            experiment_id="probe", title="Probe", paper_ref="-", run=probe,
        ))
        unit = WorkUnit("probe", scale=0.5, seed=3,
                        kwargs=freeze_kwargs({"traces": ("mac",)}))
        run_unit_inline(unit)
        assert calls == [(0.5, 3, ("mac",))]


# -- seed plumbing (satellite) ---------------------------------------------

class TestSeedPlumbing:
    def test_set_default_seed_is_deprecated(self):
        previous = traces_cache.default_seed()
        with pytest.warns(DeprecationWarning, match="seed"):
            traces_cache.set_default_seed(5)
        assert traces_cache.default_seed() == 5
        traces_cache._set_default_seed(previous)

    def test_run_experiment_threads_seed_without_global_mutation(self):
        before = traces_cache.default_seed()
        result = run_experiment("fig4", scale=SMALL, seed=9)
        assert traces_cache.default_seed() == before
        assert result.render() != run_experiment("fig4", scale=SMALL).render()

    def test_seeded_run_is_reproducible(self):
        first = run_experiment("fig4", scale=SMALL, seed=9).render()
        second = run_experiment("fig4", scale=SMALL, seed=9).render()
        assert first == second

    def test_legacy_driver_without_seed_param_warns(self, monkeypatch):
        seen = []

        def legacy(scale=1.0):
            seen.append(traces_cache.default_seed())
            return ExperimentResult("legacy", "Legacy", tables=(
                Table("t", ("a",), ((1,),)),
            ))

        monkeypatch.setitem(_EXPERIMENTS, "legacy", Experiment(
            experiment_id="legacy", title="Legacy", paper_ref="-", run=legacy,
        ))
        before = traces_cache.default_seed()
        with pytest.warns(DeprecationWarning, match="does not accept seed"):
            run_experiment("legacy", scale=SMALL, seed=123)
        assert seen == [123]  # the fallback retargeted the global...
        assert traces_cache.default_seed() == before  # ...and restored it


# -- parallel end-to-end sanity via JSON (catches pickling regressions) ----

def test_outcome_payloads_are_json_representable(tmp_path):
    units = decompose(("table2",), scale=SMALL)
    with RunManifest(tmp_path / "m.jsonl") as manifest:
        execute(units, jobs=1, manifest=manifest)
    for line in (tmp_path / "m.jsonl").read_text().splitlines():
        json.loads(line)


def test_trace_store_roundtrip_preserves_simulation(tmp_path):
    """A stored-and-reloaded trace must drive the simulator to identical
    numbers (pickle round-trips float times exactly)."""
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate

    store = TraceStore(tmp_path)
    trace = traces_cache.trace_for("synth", SMALL)
    store.save(trace, "synth", SMALL, 1)
    reloaded = store.load("synth", SMALL, 1)
    config = SimulationConfig(device="intel-datasheet")
    assert simulate(trace, config).energy_j == simulate(reloaded, config).energy_j
