"""Response-time accumulators."""

import math
import random

import pytest

from repro.core.metrics import ResponseAccumulator, ResponseStats


def test_empty_accumulator():
    acc = ResponseAccumulator()
    assert acc.count == 0
    assert acc.mean == 0.0
    assert acc.std == 0.0
    assert acc.max == 0.0


def test_single_value():
    acc = ResponseAccumulator()
    acc.add(0.5)
    assert acc.mean == pytest.approx(0.5)
    assert acc.max == 0.5
    assert acc.std == 0.0


def test_mean_max_total():
    acc = ResponseAccumulator()
    for value in (1.0, 2.0, 3.0):
        acc.add(value)
    assert acc.mean == pytest.approx(2.0)
    assert acc.max == 3.0
    assert acc.total == pytest.approx(6.0)


def test_std_matches_direct_formula():
    values = [random.Random(1).uniform(0, 10) for _ in range(100)]
    acc = ResponseAccumulator()
    for value in values:
        acc.add(value)
    mean = sum(values) / len(values)
    expected = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
    assert acc.std == pytest.approx(expected)


def test_welford_is_numerically_stable():
    acc = ResponseAccumulator()
    offset = 1e9
    for value in (offset + 1, offset + 2, offset + 3):
        acc.add(value)
    assert acc.std == pytest.approx(math.sqrt(2 / 3), rel=1e-6)


def test_reset():
    acc = ResponseAccumulator()
    acc.add(1.0)
    acc.reset()
    assert acc.count == 0
    assert acc.mean == 0.0


def test_snapshot_freezes():
    acc = ResponseAccumulator()
    acc.add(0.002)
    snapshot = acc.snapshot()
    acc.add(100.0)
    assert snapshot.count == 1
    assert snapshot.mean_s == pytest.approx(0.002)


def test_stats_millisecond_properties():
    stats = ResponseStats(count=2, mean_s=0.0257, max_s=3.5, std_s=0.01)
    assert stats.mean_ms == pytest.approx(25.7)
    assert stats.max_ms == pytest.approx(3500.0)
    assert stats.std_ms == pytest.approx(10.0)


def test_empty_stats():
    stats = ResponseStats.empty()
    assert stats.count == 0
    assert stats.mean_ms == 0.0
