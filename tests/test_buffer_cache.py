"""DRAM buffer cache behaviour."""

import pytest

from repro.cache.buffer_cache import BufferCache
from repro.devices.specs import NEC_DRAM
from repro.errors import ConfigurationError
from repro.units import KB


def make_cache(capacity_blocks=4, write_back=False):
    return BufferCache(
        capacity_blocks * KB, KB, NEC_DRAM, write_back=write_back
    )


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = make_cache()
        hits, misses = cache.lookup([1, 2])
        assert hits == [] and misses == [1, 2]
        cache.install([1, 2])
        hits, misses = cache.lookup([1, 2])
        assert hits == [1, 2] and misses == []

    def test_partial_hit(self):
        cache = make_cache()
        cache.install([1])
        hits, misses = cache.lookup([1, 2])
        assert hits == [1] and misses == [2]

    def test_capacity_evicts_lru(self):
        cache = make_cache(capacity_blocks=2)
        cache.install([1, 2])
        cache.lookup([1])  # 1 recently used
        cache.install([3])  # evicts 2
        assert cache.lookup([2]) == ([], [2])
        assert cache.lookup([1])[0] == [1]

    def test_hit_rate(self):
        cache = make_cache()
        cache.install([1])
        cache.lookup([1])
        cache.lookup([2])
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalidate(self):
        cache = make_cache()
        cache.install([1, 2])
        cache.invalidate([1])
        assert cache.lookup([1]) == ([], [1])

    def test_zero_size_cache_disabled(self):
        cache = BufferCache(0, KB, NEC_DRAM)
        assert not cache.enabled
        assert cache.lookup([1, 2]) == ([], [1, 2])
        assert cache.install([1]) == []
        assert cache.access_time(1024) == 0.0


class TestWriteBack:
    def test_dirty_tracking(self):
        cache = make_cache(write_back=True)
        cache.install([1], dirty=True)
        assert cache.dirty_blocks == 1

    def test_eviction_returns_dirty_blocks(self):
        cache = make_cache(capacity_blocks=2, write_back=True)
        cache.install([1], dirty=True)
        cache.install([2], dirty=False)
        evicted = cache.install([3, 4])
        assert evicted == [1]

    def test_clean_eviction_returns_nothing(self):
        cache = make_cache(capacity_blocks=2, write_back=True)
        cache.install([1, 2], dirty=False)
        assert cache.install([3]) == []

    def test_drain_dirty(self):
        cache = make_cache(write_back=True)
        cache.install([3, 1], dirty=True)
        assert cache.drain_dirty() == [1, 3]
        assert cache.dirty_blocks == 0

    def test_write_through_never_tracks_dirty(self):
        cache = make_cache(write_back=False)
        cache.install([1], dirty=True)
        assert cache.dirty_blocks == 0


class TestEnergyAndTiming:
    def test_standby_energy_scales_with_size(self):
        small = BufferCache(1024 * KB, KB, NEC_DRAM)
        big = BufferCache(4096 * KB, KB, NEC_DRAM)
        small.advance(100.0)
        big.advance(100.0)
        assert big.energy.total_j == pytest.approx(4 * small.energy.total_j)

    def test_access_time_includes_latency_and_transfer(self):
        cache = make_cache()
        expected = NEC_DRAM.access_latency_s + 2048 / NEC_DRAM.bandwidth_bps
        assert cache.access_time(2048) == pytest.approx(expected)

    def test_access_charges_active_energy(self):
        cache = make_cache()
        cache.access_time(4096)
        assert cache.energy.breakdown()["active"] > 0

    def test_reset_accounting(self):
        cache = make_cache()
        cache.advance(10.0)
        cache.lookup([1])
        cache.reset_accounting()
        assert cache.energy.total_j == 0.0
        assert cache.hits == 0 and cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferCache(-1, KB, NEC_DRAM)
