"""Energy meter accounting."""

import pytest

from repro.devices.power import EnergyMeter
from repro.errors import SimulationError


def test_charge_accumulates():
    meter = EnergyMeter("dev")
    meter.charge("idle", 0.7, 10.0)
    meter.charge("idle", 0.7, 5.0)
    assert meter.total_j == pytest.approx(0.7 * 15.0)


def test_buckets_are_separate():
    meter = EnergyMeter("dev")
    meter.charge("read", 1.75, 2.0)
    meter.charge("idle", 0.7, 1.0)
    breakdown = meter.breakdown()
    assert breakdown["read"] == pytest.approx(3.5)
    assert breakdown["idle"] == pytest.approx(0.7)


def test_zero_duration_is_free():
    meter = EnergyMeter("dev")
    meter.charge("idle", 0.7, 0.0)
    assert meter.total_j == 0.0
    assert meter.breakdown() == {}


def test_zero_power_is_free():
    meter = EnergyMeter("dev")
    meter.charge("idle", 0.0, 100.0)
    assert meter.total_j == 0.0


def test_negative_duration_raises():
    meter = EnergyMeter("dev")
    with pytest.raises(SimulationError):
        meter.charge("idle", 0.7, -1.0)


def test_tiny_negative_tolerated():
    meter = EnergyMeter("dev")
    meter.charge("idle", 0.7, -1e-15)  # floating-point fuzz
    assert meter.total_j == 0.0


def test_charge_energy_direct():
    meter = EnergyMeter("dev")
    meter.charge_energy("erase", 0.75)
    assert meter.breakdown()["erase"] == pytest.approx(0.75)


def test_reset_clears():
    meter = EnergyMeter("dev")
    meter.charge("idle", 1.0, 1.0)
    meter.reset()
    assert meter.total_j == 0.0


def test_breakdown_is_a_copy():
    meter = EnergyMeter("dev")
    meter.charge("idle", 1.0, 1.0)
    breakdown = meter.breakdown()
    breakdown["idle"] = 999.0
    assert meter.total_j == pytest.approx(1.0)
