"""Flash memory card model: segments, cleaning, stalls, wear."""

import pytest

from repro.devices.flashcard import FlashCard
from repro.devices.specs import INTEL_DATASHEET
from repro.errors import ConfigurationError, FlashOutOfSpaceError
from repro.units import KB

SPEC = INTEL_DATASHEET


def make_card(capacity_kb=512, segment_kb=32, block=1024, **kwargs):
    from dataclasses import replace

    spec = replace(SPEC, segment_bytes=segment_kb * KB)
    return FlashCard(
        spec, capacity_bytes=capacity_kb * KB, block_bytes=block, **kwargs
    )


class TestGeometry:
    def test_blocks_per_segment(self):
        card = make_card(segment_kb=32, block=1024)
        assert card.blocks_per_segment == 32

    def test_capacity_must_align_to_segment(self):
        with pytest.raises(ConfigurationError):
            make_card(capacity_kb=100, segment_kb=32)

    def test_segment_must_align_to_block(self):
        from dataclasses import replace

        spec = replace(SPEC, segment_bytes=10_000)
        with pytest.raises(ConfigurationError):
            FlashCard(spec, capacity_bytes=30_000, block_bytes=1024)

    def test_needs_three_segments(self):
        with pytest.raises(ConfigurationError):
            make_card(capacity_kb=64, segment_kb=32)


class TestWritePath:
    def test_write_time_per_block(self):
        card = make_card()
        completion = card.write(0.0, 2048, [0, 1], 1)
        expected = 2 * (SPEC.write_latency_s + 1024 / SPEC.write_bandwidth_bps)
        assert completion == pytest.approx(expected)

    def test_read_time(self):
        card = make_card()
        completion = card.read(0.0, 4096, [0, 1, 2, 3], 1)
        assert completion == pytest.approx(
            SPEC.read_latency_s + 4096 / SPEC.read_bandwidth_bps
        )

    def test_overwrite_marks_old_dead(self):
        card = make_card()
        card.write(0.0, 1024, [7], 1)
        card.write(1.0, 1024, [7], 1)
        dead = sum(segment.dead_blocks for segment in card.segments)
        assert dead == 1
        assert card.live_blocks == 1

    def test_segment_fills_before_moving_on(self):
        card = make_card(segment_kb=32)
        for index in range(32):
            card.write(float(index), 1024, [index], 1)
        used_segments = {card._map[b] for b in range(32)}
        assert len(used_segments) == 1

    def test_utilization_property(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        assert card.utilization == pytest.approx(0.5)

    def test_invariants_after_traffic(self):
        card = make_card()
        for index in range(200):
            card.write(float(index), 1024, [index % 50], 1)
        card.check_invariants()


class TestPreload:
    def test_preload_installs_instantly(self):
        card = make_card()
        card.preload(range(100))
        assert card.live_blocks == 100
        assert card.clock == 0.0
        assert card.energy.total_j == 0.0

    def test_preload_duplicate_ids_ignored(self):
        card = make_card()
        card.preload([1, 1, 2])
        assert card.live_blocks == 2

    def test_preload_beyond_capacity_rejected(self):
        card = make_card(capacity_kb=96, segment_kb=32)
        with pytest.raises((ConfigurationError, FlashOutOfSpaceError)):
            card.preload(range(96))  # would leave < 1 free segment


class TestCleaning:
    def test_background_cleaning_keeps_a_segment_erased(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        clock = 0.0
        for index in range(200):
            clock = card.write(clock, 1024, [index % 64], 1)
            card.advance(clock + 10.0)  # generous idle for the cleaner
            clock += 10.0
        assert card.segments_cleaned > 0
        assert card.erased_segment_count >= 1

    def test_cleaning_copies_live_blocks(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        clock = 0.0
        # Rewrite a small hot set; victims keep live (cold) blocks to copy.
        for index in range(300):
            clock = card.write(clock, 1024, [index % 8], 1)
            card.advance(clock + 5.0)
            clock += 5.0
        assert card.blocks_copied > 0
        card.check_invariants()

    def test_write_stalls_when_no_erased_segment(self):
        card = make_card(capacity_kb=128, segment_kb=32, background_cleaning=False)
        card.preload(range(80))
        clock = 0.0
        for index in range(200):
            clock = card.write(clock, 1024, [index % 80], 1)
        assert card.stalled_writes > 0
        assert card.write_stall_s > 0.0

    def test_stall_includes_erase_time(self):
        card = make_card(capacity_kb=128, segment_kb=32, background_cleaning=False)
        card.preload(range(80))
        clock = 0.0
        worst = 0.0
        for index in range(200):
            completion = card.write(clock, 1024, [index % 80], 1)
            worst = max(worst, completion - clock)
            clock = completion
        assert worst >= SPEC.erase_time_s * 0.9

    def test_on_demand_never_cleans_in_background(self):
        card = make_card(capacity_kb=128, segment_kb=32, background_cleaning=False)
        card.preload(range(64))
        clock = card.write(0.0, 1024, [0], 1)
        card.advance(clock + 1000.0)
        assert card.segments_cleaned == 0

    def test_out_of_space_raises(self):
        card = make_card(capacity_kb=96, segment_kb=32)
        card.preload(range(64))  # 2/3 full, one segment spare
        with pytest.raises(FlashOutOfSpaceError):
            clock = 0.0
            for index in range(64, 200):  # all-new data, nothing reclaimable
                clock = card.write(clock, 1024, [index], 1)

    def test_erase_counts_accumulate(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        clock = 0.0
        for index in range(400):
            clock = card.write(clock, 1024, [index % 16], 1)
            card.advance(clock + 5.0)
            clock += 5.0
        wear = card.wear(duration_s=clock)
        assert wear.total_erasures == card.segments_cleaned
        assert wear.max_erasures >= 1


class TestDeletion:
    def test_delete_invalidates(self):
        card = make_card()
        card.write(0.0, 2048, [0, 1], 1)
        card.delete(1.0, [0, 1])
        assert card.live_blocks == 0
        dead = sum(segment.dead_blocks for segment in card.segments)
        assert dead == 2

    def test_delete_unknown_is_noop(self):
        card = make_card()
        card.delete(0.0, [42])
        card.check_invariants()


class TestEnergy:
    def test_write_energy(self):
        card = make_card()
        completion = card.write(0.0, 4096, [0, 1, 2, 3], 1)
        assert card.energy.breakdown()["write"] == pytest.approx(
            completion * SPEC.active_power_w
        )

    def test_idle_energy(self):
        card = make_card()
        card.advance(50.0)
        assert card.energy.total_j == pytest.approx(50.0 * SPEC.idle_power_w)

    def test_cleaning_energy_in_own_bucket(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        clock = 0.0
        for index in range(300):
            clock = card.write(clock, 1024, [index % 16], 1)
            card.advance(clock + 5.0)
            clock += 5.0
        assert card.energy.breakdown().get("clean", 0.0) > 0.0

    def test_reset_accounting_clears_wear(self):
        card = make_card(capacity_kb=128, segment_kb=32)
        card.preload(range(64))
        clock = 0.0
        for index in range(300):
            clock = card.write(clock, 1024, [index % 16], 1)
            card.advance(clock + 5.0)
            clock += 5.0
        card.reset_accounting()
        assert card.segments_cleaned == 0
        assert all(segment.erase_count == 0 for segment in card.segments)
