"""Regenerate the strict-equivalence golden fixture.

The fixture pins the *pre-LayerStack* request path: it was produced by
running this script at the last commit before the LayerStack refactor
(``git log --oneline`` — "Add parallel, cache-aware experiment execution
engine") and is compared bit-for-bit by
``tests/test_layerstack_equivalence.py``.  Rerunning it on a current tree
only makes sense to *extend* the matrix (new workloads or devices): doing
so after an intentional, reviewed behaviour change re-baselines the
fixture, which must be called out in the PR that does it.

Usage::

    PYTHONPATH=src python tests/golden/generate_equivalence_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import workload_by_name

#: The four workloads of the paper's Table 3 plus the synthetic generator.
WORKLOADS = ("mac", "dos", "hp", "synth")
#: One device per class: magnetic disk, flash disk, flash card.
DEVICES = ("cu140-datasheet", "sdp5a-datasheet", "intel-datasheet")
#: Kept small so the equivalence test stays fast but still exercises
#: spin-downs, SRAM drains, and flash cleaning.
N_OPS = 1200
SEED = 7

OUTPUT = Path(__file__).with_name("equivalence_golden.json")


def load_trace(name: str):
    if name == "synth":
        return SyntheticWorkload().generate(n_ops=N_OPS, seed=SEED)
    return workload_by_name(name).generate(seed=SEED, n_ops=N_OPS)


def hexify(value):
    """Floats as hex strings (bit-exact), containers recursively."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        return {key: hexify(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [hexify(item) for item in value]
    return value


def response_record(stats) -> dict:
    return hexify(
        {
            "count": stats.count,
            "mean_s": stats.mean_s,
            "max_s": stats.max_s,
            "std_s": stats.std_s,
            "p50_s": stats.p50_s,
            "p95_s": stats.p95_s,
            "p99_s": stats.p99_s,
        }
    )


def capture(workload: str, device: str) -> dict:
    trace = load_trace(workload)
    result = simulate(trace, SimulationConfig(device=device))
    return {
        "trace_name": result.trace_name,
        "device_name": result.device_name,
        "duration_s": hexify(result.duration_s),
        "energy_j": hexify(result.energy_j),
        "energy_breakdown": hexify(result.energy_breakdown),
        "read": response_record(result.read_response),
        "write": response_record(result.write_response),
        "overall": response_record(result.overall_response),
        "n_reads": result.n_reads,
        "n_writes": result.n_writes,
        "n_deletes": result.n_deletes,
        "dram_hit_rate": hexify(result.dram_hit_rate),
        "device_stats": hexify(result.device_stats),
    }


def main() -> None:
    golden = {
        "n_ops": N_OPS,
        "seed": SEED,
        "cases": {
            f"{workload}/{device}": capture(workload, device)
            for workload in WORKLOADS
            for device in DEVICES
        },
    }
    OUTPUT.write_text(json.dumps(golden, indent=1, sort_keys=True))
    print(f"wrote {len(golden['cases'])} cases to {OUTPUT}")


if __name__ == "__main__":
    main()
