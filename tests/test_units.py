"""Unit-conversion helpers."""

import pytest

from repro.units import KB, MB, SECTOR, kbps, ms, to_kb, to_mb, transfer_time


def test_binary_constants():
    assert KB == 1024
    assert MB == 1024 * 1024
    assert SECTOR == 512


def test_kbps_converts_paper_throughputs():
    # The CU140's 2125 KB/s from Table 2.
    assert kbps(2125) == 2125 * 1024


def test_ms_converts_latency():
    assert ms(25.7) == pytest.approx(0.0257)


def test_to_kb_roundtrip():
    assert to_kb(kbps(600)) == 600


def test_to_mb():
    assert to_mb(10 * MB) == 10


def test_transfer_time_basic():
    assert transfer_time(1024, 1024.0) == pytest.approx(1.0)


def test_transfer_time_zero_bytes():
    assert transfer_time(0, 1000.0) == 0.0


def test_transfer_time_zero_bandwidth_is_instant():
    assert transfer_time(4096, 0.0) == 0.0


def test_transfer_time_negative_bytes_is_zero():
    assert transfer_time(-5, 1000.0) == 0.0
