"""Shared fixtures, Hypothesis profiles, and golden-update plumbing."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.devices.specs import (
    CU140_DATASHEET,
    INTEL_DATASHEET,
    SDP5A_DATASHEET,
    SDP5_DATASHEET,
)
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace
from repro.units import KB

# Pinned Hypothesis profiles so local and CI runs are reproducible and
# never flake on the shared-machine deadline heuristic.  "dev" keeps
# random exploration (and shrinking) for local runs; "ci" derandomizes so
# a CI failure is always reproducible from the log alone.  Select with
# HYPOTHESIS_PROFILE=<name>; plain CI=1 environments get "ci" by default.
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.register_profile(
    "ci",
    deadline=2000,
    derandomize=True,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden experiment-corpus fixtures instead of "
        "comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def tiny_trace() -> Trace:
    """Four-record trace touching two files (1 KB blocks)."""
    return Trace(
        "tiny",
        [
            TraceRecord(time=0.0, op=Operation.WRITE, file_id=1, offset=0, size=2048),
            TraceRecord(time=0.1, op=Operation.READ, file_id=1, offset=0, size=1024),
            TraceRecord(time=0.2, op=Operation.WRITE, file_id=2, offset=0, size=1024),
            TraceRecord(time=0.3, op=Operation.READ, file_id=2, offset=0, size=1024),
        ],
        block_size=KB,
    )


@pytest.fixture
def small_mac_trace() -> Trace:
    """A short slice of the mac workload (cached per session below)."""
    return _mac_trace()


@pytest.fixture
def small_synth_trace() -> Trace:
    return _synth_trace()


def _memoized(factory):
    cache = {}

    def wrapper():
        if "value" not in cache:
            cache["value"] = factory()
        return cache["value"]

    return wrapper


@_memoized
def _mac_trace() -> Trace:
    from repro.traces.workloads import workload_by_name

    return workload_by_name("mac").generate(seed=42, n_ops=4000)


@_memoized
def _synth_trace() -> Trace:
    from repro.traces.synthetic import SyntheticWorkload

    return SyntheticWorkload().generate(n_ops=2000, seed=42)


@pytest.fixture
def disk_spec():
    return CU140_DATASHEET


@pytest.fixture
def card_spec():
    return INTEL_DATASHEET


@pytest.fixture
def flash_disk_spec():
    return SDP5_DATASHEET


@pytest.fixture
def async_flash_disk_spec():
    return SDP5A_DATASHEET
