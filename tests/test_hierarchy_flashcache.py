"""Building the FlashCache hybrid through the standard configuration."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.hierarchy import build_hierarchy
from repro.devices.flashcache import FlashCacheDevice
from repro.errors import ConfigurationError
from repro.units import KB, MB


def test_flash_cache_bytes_builds_hybrid():
    config = SimulationConfig(device="cu140-datasheet", flash_cache_bytes=2 * MB)
    hierarchy = build_hierarchy(config, KB, dataset_blocks=1024)
    assert isinstance(hierarchy.device, FlashCacheDevice)


def test_zero_cache_builds_plain_disk():
    config = SimulationConfig(device="cu140-datasheet", flash_cache_bytes=0)
    hierarchy = build_hierarchy(config, KB, dataset_blocks=1024)
    assert not isinstance(hierarchy.device, FlashCacheDevice)


def test_cache_capacity_rounded_to_segments():
    config = SimulationConfig(
        device="cu140-datasheet", flash_cache_bytes=2 * MB + 12345
    )
    hierarchy = build_hierarchy(config, KB, dataset_blocks=1024)
    card = hierarchy.device.flash
    assert card.capacity_bytes % card.spec.segment_bytes == 0


def test_flash_cache_ignored_for_flash_devices():
    config = SimulationConfig(device="sdp5-datasheet", flash_cache_bytes=2 * MB)
    hierarchy = build_hierarchy(config, KB, dataset_blocks=1024)
    assert not isinstance(hierarchy.device, FlashCacheDevice)


def test_cache_spec_must_be_a_card():
    config = SimulationConfig(
        device="cu140-datasheet",
        flash_cache_bytes=2 * MB,
        flash_cache_spec="sdp5-datasheet",
    )
    with pytest.raises(ConfigurationError):
        build_hierarchy(config, KB, dataset_blocks=1024)


def test_negative_cache_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(flash_cache_bytes=-1)


def test_hybrid_respects_cleaning_policy():
    config = SimulationConfig(
        device="cu140-datasheet",
        flash_cache_bytes=2 * MB,
        cleaning_policy="cost-benefit",
    )
    hierarchy = build_hierarchy(config, KB, dataset_blocks=1024)
    from repro.flash.cleaner import CostBenefitPolicy

    assert isinstance(hierarchy.device.flash.policy, CostBenefitPolicy)


def test_hybrid_simulates_under_default_pipeline(small_synth_trace):
    from repro.core.simulator import simulate

    config = SimulationConfig(device="cu140-datasheet", flash_cache_bytes=4 * MB)
    result = simulate(small_synth_trace, config)
    assert result.energy_j > 0
    assert "flash_read_hits" in result.device_stats
