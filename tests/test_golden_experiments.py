"""Golden-corpus regression suite: every registered experiment, pinned.

Each registered experiment is run at a tiny fixed scale/seed and its
entire :class:`~repro.experiments.base.ExperimentResult` — titles,
headers, notes, charts, and every table cell with floats as bit-exact
hex — is compared against ``tests/golden/experiments/<id>.json``.

Any behaviour change anywhere in the stack (device models, cache policy,
cleaning, request path, renderers) shows up here as a precise cell-level
diff.  After an *intentional*, reviewed change, re-baseline with::

    PYTHONPATH=src python -m pytest tests/test_golden_experiments.py --update-golden

and call the re-baseline out in the PR that does it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.registry import all_experiments
from repro.experiments.runner import run_experiment
from tests.golden.generate_equivalence_golden import hexify

GOLDEN_DIR = Path(__file__).parent / "golden" / "experiments"

#: Tiny but non-degenerate: large enough that simulations exercise
#: spin-downs, SRAM drains, and cleaning; small enough that the whole
#: corpus runs in a few seconds.
SCALE = 0.02
SEED = 3

EXPERIMENT_IDS = sorted(all_experiments())


def snapshot(experiment_id: str) -> dict:
    """One experiment's full result, floats hexified for bit-exactness."""
    result = run_experiment(experiment_id, scale=SCALE, seed=SEED)
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "scale": hexify(result.scale),
        "notes": list(result.notes),
        "charts": list(result.charts),
        "tables": [
            {
                "title": table.title,
                "headers": list(table.headers),
                "rows": hexify([list(row) for row in table.rows]),
            }
            for table in result.tables
        ],
    }


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_matches_golden(experiment_id, update_golden):
    path = GOLDEN_DIR / f"{experiment_id}.json"
    actual = snapshot(experiment_id)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden fixture for {experiment_id!r}; generate it with "
        f"--update-golden"
    )
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"{experiment_id} diverged from its golden fixture; if the change "
        f"is intentional, re-baseline with "
        f"`PYTHONPATH=src python -m pytest "
        f"tests/test_golden_experiments.py --update-golden` "
        f"and explain the re-baseline in the PR"
    )


def test_no_stale_golden_fixtures(update_golden):
    """Every fixture file corresponds to a registered experiment."""
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    stale = recorded - set(EXPERIMENT_IDS)
    if update_golden and stale:
        for experiment_id in stale:
            (GOLDEN_DIR / f"{experiment_id}.json").unlink()
        return
    assert not stale, (
        f"golden fixtures for unregistered experiments: {sorted(stale)}; "
        f"remove them (or run with --update-golden)"
    )


def test_corpus_covers_every_experiment():
    """The parametrization above really is the whole registry."""
    assert len(EXPERIMENT_IDS) >= 20
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert recorded == set(EXPERIMENT_IDS), (
        "golden corpus out of sync with the registry; run with "
        "--update-golden"
    )
