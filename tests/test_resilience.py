"""Engine resilience: retry policy, durable cache, manifest v2, resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import (
    ExecutionPolicy,
    ResultCache,
    RunManifest,
    TraceStore,
    WorkUnit,
    decompose,
    execute,
    read_manifest,
    resume_spec,
    summarize,
)
from repro.engine.manifest import SCHEMA_VERSION, UNIT_FIELDS
from repro.engine.result_cache import result_checksum
from repro.errors import ConfigurationError
from repro.experiments import traces_cache
from repro.experiments.base import Experiment, ExperimentResult, Table
from repro.experiments.registry import _EXPERIMENTS
from repro.faults.retry import RetryPolicy
from repro.obs.metrics import MetricsRegistry

SMALL = 0.05


# -- execution policy ------------------------------------------------------

class TestExecutionPolicy:
    def test_defaults_are_valid(self):
        policy = ExecutionPolicy()
        assert policy.timeout_s is None
        assert policy.retries == 0

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"retries": -1},
        {"backoff_s": -0.1},
        {"backoff_multiplier": 0.5},
        {"jitter": 1.5},
        {"max_rebuilds": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**kwargs)

    def test_delay_is_deterministic_and_bounded(self):
        policy = ExecutionPolicy(retries=3, backoff_s=0.1, jitter=0.5)
        first = policy.delay_s("key", 1)
        assert first == policy.delay_s("key", 1)
        base = policy.retry_policy().backoff(1)
        assert base * 0.5 <= first <= base
        # distinct units are decorrelated
        assert policy.delay_s("other", 1) != first

    def test_policy_in_manifest_dict(self):
        payload = ExecutionPolicy(timeout_s=5.0, retries=2).to_json_dict()
        assert payload["timeout_s"] == 5.0
        assert payload["retries"] == 2
        json.dumps(payload)  # manifest-safe


class TestRetryPolicyJitter:
    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_s=0.1, jitter=0.0)
        assert policy.jittered_backoff(0, 0.3) == policy.backoff(0)

    def test_jitter_spans_the_window(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.5)
        assert policy.jittered_backoff(1, 0.0) == pytest.approx(0.1)  # half of 0.2
        assert policy.jittered_backoff(1, 1.0) == pytest.approx(0.2)

    def test_jitter_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        policy = RetryPolicy(jitter=0.5)
        with pytest.raises(ConfigurationError):
            policy.jittered_backoff(0, 2.0)


# -- transient retries (serial path) ---------------------------------------

@pytest.fixture
def flaky_driver(monkeypatch):
    """A driver that fails its first ``fail_first`` calls, then succeeds."""
    calls = {"n": 0, "fail_first": 2}

    def flaky(scale=1.0, seed=None):
        calls["n"] += 1
        if calls["n"] <= calls["fail_first"]:
            raise RuntimeError(f"transient failure {calls['n']}")
        return ExperimentResult("flaky", "Flaky", tables=(
            Table("t", ("a",), ((calls["n"],),)),
        ))

    monkeypatch.setitem(_EXPERIMENTS, "flaky", Experiment(
        experiment_id="flaky", title="Flaky", paper_ref="-", run=flaky,
    ))
    return calls


class TestTransientRetries:
    def test_retries_recover_transient_failures(self, tmp_path, flaky_driver):
        registry = MetricsRegistry()
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            [outcome] = execute(
                [WorkUnit("flaky", scale=SMALL)], jobs=1, manifest=manifest,
                policy=ExecutionPolicy(retries=3, backoff_s=0.001),
                metrics=registry,
            )
        assert outcome.ok
        assert outcome.retries == 2
        assert registry.get("engine_unit_retries_total").value == 2
        events = [r for r in read_manifest(tmp_path / "m.jsonl")
                  if r["record"] == "event"]
        assert [e["kind"] for e in events] == ["retry", "retry"]
        assert events[0]["reason"] == "error"
        assert events[0]["delay_s"] > 0

    def test_exhausted_budget_is_terminal(self, flaky_driver):
        [outcome] = execute(
            [WorkUnit("flaky", scale=SMALL)], jobs=1,
            policy=ExecutionPolicy(retries=1, backoff_s=0.001),
        )
        assert not outcome.ok
        assert outcome.retries == 1
        assert "transient failure 2" in outcome.error

    def test_default_policy_does_not_retry(self, flaky_driver):
        [outcome] = execute([WorkUnit("flaky", scale=SMALL)], jobs=1)
        assert not outcome.ok
        assert outcome.retries == 0
        assert flaky_driver["n"] == 1

    def test_unit_record_carries_retry_counts(self, tmp_path, flaky_driver):
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            execute([WorkUnit("flaky", scale=SMALL)], jobs=1,
                    manifest=manifest,
                    policy=ExecutionPolicy(retries=2, backoff_s=0.001))
        [unit_record] = [r for r in read_manifest(tmp_path / "m.jsonl")
                         if r["record"] == "unit"]
        assert set(UNIT_FIELDS) <= set(unit_record)
        assert unit_record["retries"] == 2
        assert unit_record["requeued"] == 0
        assert unit_record["outcome"] == "ok"


# -- atomic, checksummed, quarantining result cache ------------------------

@pytest.fixture
def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo", title="Demo", scale=0.25,
        tables=(Table("t", ("k", "v"), (("one", 1), ("two", 2.5))),),
    )


KEY = "ab" + "0" * 62


class TestDurableResultCache:
    def test_put_leaves_no_tmp_files(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, sample_result)
        assert path.exists()
        assert not list(path.parent.glob("*.tmp.*"))

    def test_entries_carry_checksums(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        payload = json.loads(cache.put(KEY, sample_result).read_text())
        assert payload["sha256"] == result_checksum(payload["result"])

    def test_truncated_entry_is_quarantined_miss(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, sample_result)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(KEY) is None
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).exists()
        assert cache.quarantined == 1
        # quarantined entries never poison later reads
        assert cache.get(KEY) is None

    def test_bitflip_fails_checksum_and_quarantines(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, sample_result)
        payload = json.loads(path.read_text())
        payload["result"]["tables"][0]["rows"][0][1] = 999  # silent corruption
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.get(KEY) is None
        assert cache.quarantined == 1

    def test_quarantine_callback_fires(self, tmp_path, sample_result):
        seen = []
        cache = ResultCache(tmp_path,
                            on_quarantine=lambda key, dest: seen.append(key))
        path = cache.put(KEY, sample_result)
        path.write_text("{torn")
        cache.get(KEY)
        assert seen == [KEY]

    def test_pre_checksum_entries_still_read(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, sample_result)
        payload = json.loads(path.read_text())
        del payload["sha256"]  # a v1 entry written before this PR
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.get(KEY) == sample_result

    def test_stats_count_quarantined(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, sample_result)
        path.write_text("{torn")
        cache.get(KEY)
        stats = cache.stats()
        assert stats.quarantined == 1
        assert "quarantined" in stats.render()
        cache.clear()
        assert not cache.quarantine_dir.exists()


class TestTraceStoreQuarantine:
    def test_corrupt_pickle_is_quarantined_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = traces_cache.trace_for("synth", SMALL)
        path = store.save(trace, "synth", SMALL, 1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn gzip-pickle
        assert store.load("synth", SMALL, 1) is None
        assert not path.exists()
        assert (store.quarantine_dir / path.name).exists()
        # the slot is writable again
        store.save(trace, "synth", SMALL, 1)
        assert store.load("synth", SMALL, 1) is not None

    def test_missing_is_plain_miss_no_quarantine(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.load("synth", 0.5, 9) is None
        assert not store.quarantine_dir.exists()


# -- manifest v2 and resume ------------------------------------------------

class TestManifestV2:
    def test_run_record_schema(self, tmp_path):
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            execute(decompose(("table2",), scale=SMALL), jobs=1,
                    manifest=manifest)
        [run] = [r for r in read_manifest(tmp_path / "m.jsonl")
                 if r["record"] == "run"]
        assert run["schema"] == SCHEMA_VERSION
        assert run["experiment_ids"] == ["table2"]
        assert run["policy"]["retries"] == 0
        assert run["resumed_from"] is None

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with RunManifest(path) as manifest:
            manifest.record_event("retry", unit="u")
        with open(path, "a") as stream:
            stream.write('{"record": "unit", "trunc')  # killed mid-append
        records = read_manifest(path)
        assert [r["record"] for r in records] == ["event"]

    def test_resume_spec_round_trips_the_request(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        units = decompose(("table2", "fig4"), scale=SMALL, seeds=(1, 2))
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            execute(units, jobs=1, cache=cache, manifest=manifest)
        spec = resume_spec(tmp_path / "m.jsonl")
        assert spec["experiment_ids"] == ["table2", "fig4"]
        assert spec["scale"] == SMALL
        assert set(spec["seeds"]) == {1, 2}
        assert spec["cache_dir"] == str(cache.root)
        assert len(spec["completed"]) == 4
        # the reconstructed request decomposes to the same unit set
        again = decompose(spec["experiment_ids"], scale=spec["scale"],
                          seeds=tuple(spec["seeds"]))
        assert set(again) == set(units)

    def test_resume_spec_rejects_v1_manifests(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"record": "run", "jobs": 1,
                                    "scale": 0.2, "seeds": [None]}) + "\n")
        with pytest.raises(ConfigurationError, match="schema"):
            resume_spec(path)

    def test_resume_spec_rejects_non_manifests(self, tmp_path):
        path = tmp_path / "not.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="no run record"):
            resume_spec(path)


# -- artifact directories created once, in the parent ----------------------

class TestArtifactDirectories:
    def test_execute_creates_dirs_up_front(self, tmp_path):
        trace_dir = tmp_path / "nested" / "traces"
        metrics_dir = tmp_path / "nested" / "metrics"
        execute([], jobs=1, trace_dir=str(trace_dir),
                metrics_dir=str(metrics_dir))
        assert trace_dir.is_dir()
        assert metrics_dir.is_dir()

    def test_observed_units_write_into_them(self, tmp_path):
        trace_dir = tmp_path / "t"
        [outcome] = execute([WorkUnit("table2", scale=SMALL)], jobs=1,
                            trace_dir=str(trace_dir))
        assert outcome.ok
        assert os.path.isfile(outcome.artifacts["trace"])


# -- summarize gains recovery counts ---------------------------------------

def test_summarize_counts_recovery(flaky_driver):
    outcomes = execute([WorkUnit("flaky", scale=SMALL)], jobs=1,
                       policy=ExecutionPolicy(retries=3, backoff_s=0.001))
    counts = summarize(outcomes)
    assert counts["retries"] == 2
    assert counts["requeued"] == 0
