"""Sector-remapping FTL for the flash disk."""

import pytest

from repro.errors import DeviceError
from repro.flash.ftl import SectorMap


def test_initial_pools():
    sectors = SectorMap(10)
    assert sectors.free_sectors == 10
    assert sectors.dirty_sectors == 0
    assert sectors.mapped_sectors == 0


def test_fresh_write_is_pre_erased():
    sectors = SectorMap(4)
    assert sectors.write(0) is True
    assert sectors.mapped_sectors == 1
    assert sectors.free_sectors == 3


def test_overwrite_dirties_old_sector():
    sectors = SectorMap(4)
    sectors.write(0)
    old = sectors.physical_for(0)
    assert sectors.write(0) is True
    assert sectors.dirty_sectors == 1
    assert sectors.physical_for(0) != old


def test_coupled_fallback_reuses_in_place():
    sectors = SectorMap(2)
    sectors.write(0)
    sectors.write(1)  # pool now empty
    physical = sectors.physical_for(0)
    assert sectors.write(0) is False  # coupled erase+write
    assert sectors.physical_for(0) == physical
    assert sectors.dirty_sectors == 0


def test_coupled_fallback_consumes_dirty_for_new_logical():
    sectors = SectorMap(2)
    sectors.write(0)
    sectors.write(0)  # old version dirty, pool empty
    assert sectors.free_sectors == 0
    assert sectors.dirty_sectors == 1
    assert sectors.write(5) is False  # new logical, takes the dirty sector
    assert sectors.dirty_sectors == 0


def test_out_of_sectors_raises():
    sectors = SectorMap(1)
    sectors.write(0)
    with pytest.raises(DeviceError):
        sectors.write(1)


def test_trim_releases_to_dirty():
    sectors = SectorMap(4)
    sectors.write(0)
    assert sectors.trim(0) is True
    assert sectors.mapped_sectors == 0
    assert sectors.dirty_sectors == 1


def test_trim_unknown_is_false():
    sectors = SectorMap(4)
    assert sectors.trim(9) is False


def test_erase_one_recycles():
    sectors = SectorMap(4)
    sectors.write(0)
    sectors.trim(0)
    assert sectors.erase_one() is True
    assert sectors.free_sectors == 4


def test_erase_one_empty_queue():
    sectors = SectorMap(4)
    assert sectors.erase_one() is False


def test_preload_maps_range():
    sectors = SectorMap(8)
    sectors.preload(5)
    assert sectors.mapped_sectors == 5
    assert sectors.free_sectors == 3


def test_preload_too_big_raises():
    sectors = SectorMap(4)
    with pytest.raises(DeviceError):
        sectors.preload(5)


def test_invariant_through_mixed_operations():
    sectors = SectorMap(16)
    sectors.preload(8)
    for logical in range(12):
        sectors.write(logical % 10)
        sectors.check_invariant()
    sectors.trim(3)
    sectors.check_invariant()
    while sectors.erase_one():
        sectors.check_invariant()


def test_zero_sectors_rejected():
    with pytest.raises(DeviceError):
        SectorMap(0)
