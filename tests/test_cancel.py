"""Cooperative cancellation in the scheduler (serial and pool paths)
and the signal-to-cancel bridge used by the CLI fronts."""

from __future__ import annotations

import os
import signal
import threading

from repro.engine import (
    CANCELLED_ERROR,
    INTERRUPT_EXIT_CODE,
    RunManifest,
    ResultCache,
    cancel_on_signals,
    decompose,
    execute,
    read_manifest,
    summarize,
)

FAST_IDS = ("table2", "fig4")
SMALL = 0.05


class TestSerialCancel:
    def test_preset_cancel_runs_nothing(self, tmp_path):
        units = decompose(FAST_IDS, scale=SMALL)
        cancel = threading.Event()
        cancel.set()
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            outcomes = execute(units, jobs=1, manifest=manifest,
                               cancel=cancel)
        assert all(o.cancelled for o in outcomes)
        assert all(o.result is None for o in outcomes)
        assert summarize(outcomes)["cancelled"] == len(units)
        records = read_manifest(tmp_path / "m.jsonl")
        kinds = [r.get("kind") for r in records if r["record"] == "event"]
        assert "cancel" in kinds

    def test_cancel_between_units(self):
        units = decompose(FAST_IDS, scale=SMALL, seeds=(1, 2))
        cancel = threading.Event()

        def stop_after_first(done, total, outcome):
            cancel.set()

        outcomes = execute(units, jobs=1, cancel=cancel,
                           progress=stop_after_first)
        counts = summarize(outcomes)
        assert counts["ok"] == 1
        assert counts["cancelled"] == len(units) - 1
        assert outcomes[0].ok and outcomes[-1].cancelled

    def test_cancelled_units_resume_from_cache(self, tmp_path):
        units = decompose(FAST_IDS, scale=SMALL)
        cache = ResultCache(tmp_path)
        cancel = threading.Event()
        first = execute(units, jobs=1, cache=cache, cancel=cancel,
                        progress=lambda d, t, o: cancel.set())
        assert summarize(first)["cancelled"] == len(units) - 1
        # Re-run without cancel: the completed unit replays from cache,
        # the abandoned ones execute now.
        second = execute(units, jobs=1, cache=cache)
        assert all(o.ok for o in second)
        assert [o.cache for o in second].count("hit") == 1


class TestPoolCancel:
    def test_preset_cancel_runs_nothing(self):
        units = decompose(FAST_IDS, scale=SMALL, seeds=(1, 2))
        cancel = threading.Event()
        cancel.set()
        outcomes = execute(units, jobs=2, cancel=cancel)
        assert all(o.cancelled for o in outcomes)

    def test_cancel_mid_flight(self):
        units = decompose(FAST_IDS, scale=SMALL, seeds=(1, 2, 3))
        cancel = threading.Event()

        def stop_after_first(done, total, outcome):
            cancel.set()

        outcomes = execute(units, jobs=2, cancel=cancel,
                           progress=stop_after_first)
        counts = summarize(outcomes)
        assert counts["cancelled"] >= 1
        assert counts["ok"] >= 1
        assert counts["ok"] + counts["cancelled"] == len(units)
        # Nothing failed for any other reason.
        assert all(o.error in (None, CANCELLED_ERROR) for o in outcomes)


class TestSignalBridge:
    def test_sigint_sets_event_once_then_raises(self):
        with cancel_on_signals() as cancel:
            assert not cancel.is_set()
            os.kill(os.getpid(), signal.SIGINT)
            assert cancel.wait(timeout=5.0)
        assert INTERRUPT_EXIT_CODE == 130

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGINT)
        with cancel_on_signals():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before
