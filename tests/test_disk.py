"""Magnetic disk model: spin state machine, seeks, energy."""

import pytest

from repro.devices.disk import DiskState, MagneticDisk
from repro.devices.specs import CU140_DATASHEET
from repro.devices.spindown import FixedTimeoutPolicy, NeverSpinDownPolicy
from repro.units import KB


def make_disk(threshold=5.0, start_spinning=True):
    policy = (
        NeverSpinDownPolicy() if threshold is None else FixedTimeoutPolicy(threshold)
    )
    return MagneticDisk(CU140_DATASHEET, policy, start_spinning=start_spinning)


SPEC = CU140_DATASHEET


class TestOperationTiming:
    def test_first_access_pays_full_random_overhead(self):
        disk = make_disk()
        completion = disk.read(0.0, 4 * KB, [0], file_id=1)
        expected = SPEC.random_access_s + 4 * KB / SPEC.read_bandwidth_bps
        assert completion == pytest.approx(expected)

    def test_same_file_skips_seek(self):
        disk = make_disk()
        first = disk.read(0.0, KB, [0], file_id=1)
        second = disk.read(first, KB, [1], file_id=1)
        duration = second - first
        expected = SPEC.rotation_s + SPEC.controller_s + KB / SPEC.read_bandwidth_bps
        assert duration == pytest.approx(expected)

    def test_file_change_pays_seek(self):
        disk = make_disk()
        first = disk.read(0.0, KB, [0], file_id=1)
        second = disk.read(first, KB, [5], file_id=2)
        assert (second - first) == pytest.approx(
            SPEC.random_access_s + KB / SPEC.read_bandwidth_bps
        )

    def test_write_uses_write_bandwidth(self):
        disk = make_disk()
        completion = disk.write(0.0, 64 * KB, [0], file_id=1)
        assert completion == pytest.approx(
            SPEC.random_access_s + 64 * KB / SPEC.write_bandwidth_bps
        )

    def test_queueing_serializes_operations(self):
        disk = make_disk()
        first = disk.read(0.0, KB, [0], file_id=1)
        second = disk.read(0.0, KB, [1], file_id=1)  # arrives at t=0 too
        assert second > first


class TestSpinStateMachine:
    def test_starts_spinning(self):
        disk = make_disk()
        assert disk.state is DiskState.SPINNING

    def test_spins_down_after_threshold(self):
        disk = make_disk(threshold=5.0)
        disk.read(0.0, KB, [0], 1)
        disk.advance(20.0)
        assert disk.state is DiskState.SLEEPING
        assert disk.spin_downs == 1

    def test_no_spin_down_before_threshold(self):
        disk = make_disk(threshold=5.0)
        completion = disk.read(0.0, KB, [0], 1)
        disk.advance(completion + 4.9)
        assert disk.state is DiskState.SPINNING

    def test_never_policy_keeps_spinning(self):
        disk = make_disk(threshold=None)
        disk.read(0.0, KB, [0], 1)
        disk.advance(10_000.0)
        assert disk.state is DiskState.SPINNING
        assert disk.spin_downs == 0

    def test_access_while_sleeping_pays_spin_up(self):
        disk = make_disk(threshold=5.0)
        first = disk.read(0.0, KB, [0], 1)
        disk.advance(first + 60.0)  # long idle: spin down completes
        second = disk.read(first + 60.0, KB, [0], 1)
        duration = second - (first + 60.0)
        assert duration >= SPEC.spin_up_s
        assert disk.spin_ups == 1

    def test_access_mid_spin_down_waits_out_the_spin_down(self):
        disk = make_disk(threshold=5.0)
        first = disk.read(0.0, KB, [0], 1)
        # Arrive 1 s into the spin-down (threshold 5 s after completion).
        arrival = first + 5.0 + 1.0
        second = disk.read(arrival, KB, [0], 1)
        wait = second - arrival
        remaining_spin_down = SPEC.spin_down_s - 1.0
        assert wait >= remaining_spin_down + SPEC.spin_up_s

    def test_worst_case_response_bounded_by_full_cycle(self):
        disk = make_disk(threshold=5.0)
        first = disk.read(0.0, KB, [0], 1)
        arrival = first + 5.0 + 1e-6  # just as spin-down starts
        second = disk.read(arrival, KB, [0], 1)
        assert (second - arrival) <= (
            SPEC.spin_down_s + SPEC.spin_up_s + SPEC.random_access_s + 0.01
        )


class TestEnergy:
    def test_idle_energy_at_idle_power(self):
        disk = make_disk(threshold=None)
        disk.advance(100.0)
        assert disk.energy.total_j == pytest.approx(100.0 * SPEC.idle_power_w)

    def test_sleep_energy_cheaper_than_idle(self):
        awake = make_disk(threshold=None)
        awake.advance(1000.0)
        sleepy = make_disk(threshold=5.0)
        sleepy.advance(1000.0)
        assert sleepy.energy.total_j < awake.energy.total_j

    def test_spin_up_energy_charged(self):
        disk = make_disk(threshold=5.0)
        disk.advance(100.0)
        disk.read(100.0, KB, [0], 1)
        assert disk.energy.breakdown()["spin_up"] == pytest.approx(
            SPEC.spin_up_power_w * SPEC.spin_up_s
        )

    def test_active_energy_proportional_to_op_time(self):
        disk = make_disk()
        completion = disk.read(0.0, 100 * KB, [0], 1)
        assert disk.energy.breakdown()["read"] == pytest.approx(
            completion * SPEC.active_power_w
        )

    def test_reset_accounting(self):
        disk = make_disk()
        disk.read(0.0, KB, [0], 1)
        disk.reset_accounting()
        assert disk.energy.total_j == 0.0
        assert disk.reads == 0
        assert disk.spin_ups == 0


class TestCounters:
    def test_reads_writes_counted(self):
        disk = make_disk()
        t = disk.read(0.0, KB, [0], 1)
        disk.write(t, 2 * KB, [1, 2], 1)
        assert disk.reads == 1
        assert disk.writes == 1
        assert disk.bytes_read == KB
        assert disk.bytes_written == 2 * KB

    def test_accepts_immediate_flush_only_while_spinning(self):
        disk = make_disk(threshold=5.0)
        assert disk.accepts_immediate_flush()
        disk.advance(100.0)
        assert not disk.accepts_immediate_flush()

    def test_stats_mapping(self):
        disk = make_disk()
        disk.read(0.0, KB, [0], 1)
        stats = disk.stats()
        assert stats["reads"] == 1
        assert "spin_ups" in stats
