"""Experiment framework and drivers (run at small scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.base import ExperimentResult, Table

SMALL = 0.05


class TestTableRendering:
    def test_render_contains_headers_and_rows(self):
        table = Table("demo", ("a", "b"), ((1, 2.5), ("x", 10_000.0)))
        text = table.render()
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "10,000" in text

    def test_column_accessor(self):
        table = Table("demo", ("k", "v"), (("one", 1), ("two", 2)))
        assert table.column("v") == [1, 2]

    def test_column_missing(self):
        table = Table("demo", ("k",), (("one",),))
        with pytest.raises(ConfigurationError):
            table.column("nope")

    def test_lookup(self):
        table = Table("demo", ("k", "v"), (("one", 1), ("two", 2)))
        assert table.lookup("two", "v") == 2

    def test_lookup_missing_row(self):
        table = Table("demo", ("k", "v"), (("one", 1),))
        with pytest.raises(ConfigurationError):
            table.lookup("three", "v")


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        ids = set(all_experiments())
        for required in (
            "table1", "table2", "table3", "table4",
            "fig1", "fig2", "fig3", "fig4", "fig5",
            "validation", "endurance", "async-cleaning", "headline",
        ):
            assert required in ids

    def test_seven_ablations_registered(self):
        ablations = [i for i in all_experiments() if i.startswith("ablation-")]
        assert len(ablations) == 7

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table99")

    def test_scale_validated(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table2")(scale=0.0)


@pytest.mark.parametrize("experiment_id", sorted(all_experiments()))
def test_every_experiment_runs_and_produces_tables(experiment_id):
    result = run_experiment(experiment_id, scale=SMALL)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.tables, "experiment produced no tables"
    for table in result.tables:
        assert table.rows, f"{experiment_id}: empty table {table.title!r}"
        for row in table.rows:
            assert len(row) == len(table.headers)
    rendered = result.render()
    assert experiment_id in rendered


class TestExperimentShapes:
    """Cheap shape checks on individual drivers at small scale."""

    def test_fig1_mffs_slope_dominates(self):
        result = run_experiment("fig1", scale=0.25)
        slopes = dict(
            zip(
                result.table("growth").column("curve"),
                result.table("growth").column("slope ms/MB"),
            )
        )
        assert slopes["intel compressed"] > 5 * max(
            abs(slopes["cu140 uncompressed"]), 1e-9
        )

    def test_fig5_sram_improves_writes(self):
        result = run_experiment("fig5", scale=0.1, traces=("mac",))
        table = result.tables[0]
        normalized = table.column("wr/wr(0)")
        assert normalized[0] == pytest.approx(1.0)
        assert min(normalized[1:]) < 0.2  # 32 KB SRAM: large improvement

    def test_async_cleaning_reduces_writes(self):
        result = run_experiment("async-cleaning", scale=0.1, traces=("mac",))
        table = result.tables[0]
        sync_ms = table.column("sync wr ms")[0]
        async_ms = table.column("async wr ms")[0]
        assert async_ms < sync_ms / 2  # the abstract's "factor of 2.5"

    def test_headline_energy_savings(self):
        result = run_experiment("headline", scale=0.1, traces=("mac",))
        savings = result.tables[0].column("energy saved")
        for value in savings:
            assert int(value.rstrip("%")) > 50

    def test_table4_device_ordering(self):
        result = run_experiment("table4", scale=0.1, traces=("mac",))
        table = result.tables[0]
        energy = dict(zip(table.column("device"), table.column("energy J")))
        assert energy["intel-datasheet"] < energy["cu140-datasheet"] / 4
        assert energy["sdp5-datasheet"] < energy["cu140-datasheet"] / 4
        assert energy["kh-datasheet"] > energy["cu140-datasheet"]

    def test_ablation_series2plus_cuts_worst_case(self):
        result = run_experiment(
            "ablation-series2plus", scale=0.1, traces=("hp",)
        )
        table = result.tables[0]
        rows = {row[1]: row for row in table.rows}
        old = rows["intel-datasheet"]
        new = rows["intel-series2plus"]
        wr_max_index = table.headers.index("wr max ms")
        assert new[wr_max_index] <= old[wr_max_index]

    def test_notes_render(self):
        result = run_experiment("table2", scale=1.0)
        assert "Notes:" in result.render()

    def test_result_table_accessor(self):
        result = run_experiment("table2", scale=1.0)
        assert result.table("manufacturer").rows
        with pytest.raises(ConfigurationError):
            result.table("no-such-table")
