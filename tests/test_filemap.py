"""File-level to block-level preprocessing."""

import pytest

from repro.errors import TraceError
from repro.traces.filemap import FileMapper, dataset_blocks, map_trace
from repro.traces.record import Operation, TraceRecord
from repro.units import KB


def record(time, op, file_id, offset=0, size=1024):
    if op is Operation.DELETE:
        return TraceRecord(time=time, op=op, file_id=file_id)
    return TraceRecord(time=time, op=op, file_id=file_id, offset=offset, size=size)


class TestFileMapper:
    def test_first_touch_allocates_sequentially(self):
        mapper = FileMapper(KB)
        op = mapper.translate(record(0, Operation.WRITE, 1, 0, 3 * KB))
        assert op.blocks == (0, 1, 2)

    def test_same_file_same_blocks(self):
        mapper = FileMapper(KB)
        first = mapper.translate(record(0, Operation.WRITE, 1, 0, 2 * KB))
        second = mapper.translate(record(1, Operation.READ, 1, 0, 2 * KB))
        assert first.blocks == second.blocks

    def test_different_files_disjoint_blocks(self):
        mapper = FileMapper(KB)
        a = mapper.translate(record(0, Operation.WRITE, 1, 0, 2 * KB))
        b = mapper.translate(record(1, Operation.WRITE, 2, 0, 2 * KB))
        assert not set(a.blocks) & set(b.blocks)

    def test_offset_maps_to_file_block(self):
        mapper = FileMapper(KB)
        mapper.translate(record(0, Operation.WRITE, 1, 0, 4 * KB))
        op = mapper.translate(record(1, Operation.READ, 1, 2 * KB, KB))
        assert op.blocks == (2,)

    def test_unaligned_transfer_spans_blocks(self):
        mapper = FileMapper(KB)
        op = mapper.translate(record(0, Operation.WRITE, 1, 512, KB))
        assert op.nblocks == 2  # straddles the 1 KB boundary

    def test_delete_frees_blocks(self):
        mapper = FileMapper(KB)
        mapper.translate(record(0, Operation.WRITE, 1, 0, 2 * KB))
        delete = mapper.translate(record(1, Operation.DELETE, 1))
        assert delete.blocks == (0, 1)
        assert mapper.blocks_in_use == 0

    def test_deleted_blocks_are_recycled(self):
        mapper = FileMapper(KB)
        mapper.translate(record(0, Operation.WRITE, 1, 0, 2 * KB))
        mapper.translate(record(1, Operation.DELETE, 1))
        op = mapper.translate(record(2, Operation.WRITE, 2, 0, 2 * KB))
        assert op.blocks == (0, 1)  # lowest freed blocks first

    def test_delete_unknown_file_is_noop(self):
        mapper = FileMapper(KB)
        delete = mapper.translate(record(0, Operation.DELETE, 99))
        assert delete.blocks == ()

    def test_high_water_tracks_peak(self):
        mapper = FileMapper(KB)
        mapper.translate(record(0, Operation.WRITE, 1, 0, 4 * KB))
        mapper.translate(record(1, Operation.DELETE, 1))
        mapper.translate(record(2, Operation.WRITE, 2, 0, 2 * KB))
        assert mapper.high_water_blocks == 4

    def test_capacity_limit_enforced(self):
        mapper = FileMapper(KB, capacity_blocks=2)
        with pytest.raises(TraceError):
            mapper.translate(record(0, Operation.WRITE, 1, 0, 3 * KB))

    def test_device_blocks_in_file_order(self):
        mapper = FileMapper(KB)
        mapper.translate(record(0, Operation.WRITE, 1, 2 * KB, KB))  # file block 2
        mapper.translate(record(1, Operation.WRITE, 1, 0, KB))  # file block 0
        blocks = mapper.device_blocks(1)
        assert len(blocks) == 2
        # file block 0 allocated second -> device block 1
        assert blocks == [1, 0]

    def test_invalid_block_size(self):
        with pytest.raises(TraceError):
            FileMapper(0)


class TestMapTrace:
    def test_map_trace_preserves_order_and_count(self, tiny_trace):
        ops = map_trace(tiny_trace)
        assert len(ops) == len(tiny_trace)
        assert [op.time for op in ops] == [r.time for r in tiny_trace]

    def test_dataset_blocks_counts_peak(self, tiny_trace):
        assert dataset_blocks(tiny_trace) == 3

    def test_block_ops_size_is_block_aligned(self, tiny_trace):
        for op in map_trace(tiny_trace):
            assert op.size % tiny_trace.block_size == 0
            assert op.size == op.nblocks * tiny_trace.block_size
