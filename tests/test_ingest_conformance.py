"""Trace-import conformance suite.

Three layers, mirroring the golden-experiment corpus:

* **Golden fixtures** — real-format excerpts under ``tests/golden/traces``
  are imported and their full :class:`TraceStatistics` compared against
  snapshotted ``<fixture>.stats.json`` files (refresh with
  ``--update-golden``).
* **Conformance gate** — :func:`import_trace`'s ``expect=`` path accepts a
  conforming trace and rejects a perturbed reference with a
  :class:`TraceError` naming the failing fields; round-trips through
  ``save_trace``/``load_trace`` stay within :data:`IMPORT_TOLERANCES`.
* **Parser totality** — Hypothesis drives each parser with adversarial
  input (truncated lines, out-of-order timestamps, zero-size ops, CRLF,
  embedded NULs, binary junk): every input either parses — with the
  accounting identity ``lines == records + comments + filtered`` — or
  raises :class:`TraceError` carrying a 1-based line number.  Parsers
  never crash with a foreign exception and never silently drop a line.
"""

from __future__ import annotations

import gzip
import json
import re
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.traces.ingest import (
    CsvSpec,
    detect_format,
    import_trace,
    parse_column_map,
)
from repro.traces.ingest import blktrace as blktrace_mod
from repro.traces.ingest import csvmap as csvmap_mod
from repro.traces.ingest import snia as snia_mod
from repro.traces.io import load_trace, save_trace
from repro.traces.stats import (
    IMPORT_TOLERANCES,
    TraceStatistics,
    check_conformance,
    compute_statistics,
)

GOLDEN_DIR = Path(__file__).parent / "golden" / "traces"

FILE_CSV_SPEC = CsvSpec(
    columns={"time": "Timestamp", "op": "Type", "file": "File",
             "offset": "Offset", "size": "Size"},
)

#: fixture file -> (expected format, parser options)
FIXTURES: dict[str, tuple[str, dict]] = {
    "sample_file.csv": ("csv", {"spec": FILE_CSV_SPEC}),
    "sample_blk.txt": ("blktrace", {}),
    "sample_msr.csv": ("snia", {}),
}


def _import_fixture(filename: str):
    fmt, options = FIXTURES[filename]
    return import_trace(GOLDEN_DIR / filename, format=fmt, **options)


# -- golden statistics snapshots -------------------------------------------


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_fixture_matches_golden_statistics(filename, update_golden):
    trace, report = _import_fixture(filename)
    stats = compute_statistics(trace)
    # JSON round-trip before comparing so the snapshot is exactly what a
    # reader of the .stats.json file sees.
    actual = json.loads(json.dumps(stats.to_dict()))
    path = GOLDEN_DIR / f"{filename}.stats.json"
    if update_golden:
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden statistics for {filename!r}; generate with "
        f"--update-golden"
    )
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"{filename} import statistics diverged from the golden snapshot; "
        f"if intentional, re-baseline with --update-golden and call it "
        f"out in the PR"
    )


def test_every_fixture_has_a_snapshot_and_vice_versa():
    """A stale .stats.json (or a fixture without one) fails loudly."""
    snapshots = {p.name for p in GOLDEN_DIR.glob("*.stats.json")}
    expected = {f"{name}.stats.json" for name in FIXTURES}
    assert snapshots == expected


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_fixture_format_detection(filename):
    assert detect_format(GOLDEN_DIR / filename) == FIXTURES[filename][0]


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_fixture_report_accounting(filename):
    trace, report = _import_fixture(filename)
    assert report.lines == report.records + report.comments + report.filtered
    assert len(trace) == report.records
    times = [r.time for r in trace]
    assert times == sorted(times)
    assert times[0] == 0.0


def test_file_csv_fixture_is_file_level():
    trace, _ = _import_fixture("sample_file.csv")
    assert trace.metadata["source_level"] == "file"
    # Deletes survive file-level import (the paper's traces carry them).
    assert any(r.op.value == "delete" for r in trace)


def test_blktrace_fixture_filters_non_queue_actions():
    trace, report = _import_fixture("sample_blk.txt")
    assert trace.metadata["source_level"] == "disk"
    assert report.filtered > 0  # G/D/C events counted, not dropped
    assert report.records == 9  # the Q events
    assert trace.metadata["synthesised_files"] >= 1


def test_snia_fixture_keeps_disks_apart():
    trace, _ = _import_fixture("sample_msr.csv")
    assert trace.metadata["disks"] == 3  # (usr,0), (usr,1), (prn,0)
    assert trace.metadata["synthesised_files"] >= 3
    # FILETIME ticks (100 ns) → seconds, rebased to zero: the excerpt
    # spans exactly 4 030 000 000 ticks.
    stats = compute_statistics(trace)
    assert stats.duration_s == pytest.approx(403.0)


# -- conformance gate ------------------------------------------------------


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_import_gate_accepts_conforming_reference(filename):
    fmt, options = FIXTURES[filename]
    reference = compute_statistics(_import_fixture(filename)[0])
    trace, _ = import_trace(
        GOLDEN_DIR / filename, format=fmt, expect=reference, **options
    )
    assert trace.metadata["conformance"]["ok"] is True


def test_import_gate_accepts_reference_as_dict():
    reference = compute_statistics(_import_fixture("sample_file.csv")[0])
    trace, _ = import_trace(
        GOLDEN_DIR / "sample_file.csv", format="csv", spec=FILE_CSV_SPEC,
        expect=reference.to_dict(),
    )
    assert trace.metadata["conformance"]["ok"] is True


def test_import_gate_rejects_nonconforming_reference():
    reference = compute_statistics(_import_fixture("sample_file.csv")[0])
    wrong = TraceStatistics.from_dict(
        {**reference.to_dict(), "fraction_reads": 0.0, "block_size_kbytes": 4.0}
    )
    with pytest.raises(TraceError, match="does not conform") as excinfo:
        import_trace(
            GOLDEN_DIR / "sample_file.csv", format="csv", spec=FILE_CSV_SPEC,
            expect=wrong,
        )
    assert "fraction_reads" in str(excinfo.value)
    assert "block_size_kbytes" in str(excinfo.value)


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_roundtrip_conforms_under_import_tolerances(filename, tmp_path):
    """Import → save_trace → load_trace preserves Table 3 statistics."""
    trace, _ = _import_fixture(filename)
    path = tmp_path / "roundtrip.txt.gz"
    save_trace(trace, path)
    reloaded = load_trace(path)
    report = check_conformance(
        compute_statistics(trace), compute_statistics(reloaded),
        tolerances=IMPORT_TOLERANCES,
    )
    assert report.ok, "\n".join(report.problems())


def test_unknown_format_rejected(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("0,read,1,0,4096\n")
    with pytest.raises(TraceError, match="unknown trace format"):
        import_trace(path, format="vhs")


def test_undetectable_format_rejected(tmp_path):
    path = tmp_path / "x.dat"
    path.write_text("hello\n")
    with pytest.raises(TraceError, match="cannot detect"):
        import_trace(path)


def test_parse_column_map_cli_syntax():
    assert parse_column_map("time=Timestamp,op=2,size=Size") == {
        "time": "Timestamp", "op": 2, "size": "Size",
    }
    with pytest.raises(TraceError, match="expected field=column"):
        parse_column_map("time")


# -- deterministic adversarial cases ---------------------------------------

LINE_REF = re.compile(r":\d+: ")

INDEXED_SPEC = CsvSpec(
    columns={"time": 0, "op": 1, "file": 2, "offset": 3, "size": 4},
    header=False,
)


def _write(tmp_path: Path, text: str, name: str = "t.csv") -> Path:
    path = tmp_path / name
    path.write_bytes(text.encode("latin-1"))
    return path


def test_csv_truncated_line_names_line(tmp_path):
    path = _write(tmp_path, "0.0,read,1,0,4096\n0.5,read,1\n")
    with pytest.raises(TraceError, match=r"t\.csv:2: "):
        csvmap_mod.parse(path, spec=INDEXED_SPEC)


def test_csv_zero_size_read_names_line(tmp_path):
    path = _write(tmp_path, "0.0,read,1,0,0\n")
    with pytest.raises(TraceError, match=r"t\.csv:1: "):
        csvmap_mod.parse(path, spec=INDEXED_SPEC)


def test_csv_embedded_nul_names_line(tmp_path):
    path = _write(tmp_path, "0.0,re\x00ad,1,0,4096\n")
    with pytest.raises(TraceError, match=LINE_REF):
        csvmap_mod.parse(path, spec=INDEXED_SPEC)


def test_csv_crlf_accepted(tmp_path):
    path = _write(tmp_path, "0.0,read,1,0,4096\r\n0.5,write,2,0,512\r\n")
    trace, report = csvmap_mod.parse(path, spec=INDEXED_SPEC)
    assert report.records == 2
    assert trace[1].size == 512


def test_csv_out_of_order_times_stable_sorted(tmp_path):
    path = _write(
        tmp_path,
        "2.0,read,1,0,4096\n0.0,write,2,0,512\n2.0,write,3,0,512\n",
    )
    trace, report = csvmap_mod.parse(path, spec=INDEXED_SPEC)
    assert report.reordered == 1
    assert [r.file_id for r in trace] == [2, 1, 3]  # stable tie at t=2.0
    assert [r.time for r in trace] == [0.0, 2.0, 2.0]


def test_csv_negative_time_names_line(tmp_path):
    path = _write(tmp_path, "-1.0,read,1,0,4096\n")
    with pytest.raises(TraceError, match=r"t\.csv:1: record time"):
        csvmap_mod.parse(path, spec=INDEXED_SPEC)


def test_disk_level_csv_rejects_deletes(tmp_path):
    spec = CsvSpec(columns={"time": 0, "op": 1, "offset": 2, "size": 3},
                   header=False)
    path = _write(tmp_path, "0.0,delete,0,4096\n")
    with pytest.raises(TraceError, match=r"t\.csv:1: delete records"):
        csvmap_mod.parse(path, spec=spec)


def test_blktrace_bad_payload_names_line(tmp_path):
    path = _write(
        tmp_path,
        "8,0 1 1 0.0 99 Q R 16 + 8 [x]\n8,0 1 2 0.1 99 Q R banana + 8 [x]\n",
        name="t.blk",
    )
    with pytest.raises(TraceError, match=r"t\.blk:2: bad sector"):
        blktrace_mod.parse(path)


def test_blktrace_zero_sector_count_names_line(tmp_path):
    path = _write(tmp_path, "8,0 1 1 0.0 99 Q W 16 + 0 [x]", name="t.blk")
    with pytest.raises(TraceError, match=r"t\.blk:1: sector count"):
        blktrace_mod.parse(path)


def test_snia_truncated_line_names_line(tmp_path):
    path = _write(
        tmp_path,
        "128166372003061629,usr,0,Read,0,4096,10\n128166372004061629,usr\n",
        name="t.msr",
    )
    with pytest.raises(TraceError, match=r"t\.msr:2: expected >= 6"):
        snia_mod.parse(path)


def test_snia_zero_size_names_line(tmp_path):
    path = _write(tmp_path, "10,usr,0,Write,0,0,1\n", name="t.msr")
    with pytest.raises(TraceError, match=r"t\.msr:1: size must be > 0"):
        snia_mod.parse(path)


def test_snia_filetime_precision_survives():
    """Tick deltas far below float64 resolution at the FILETIME epoch
    still come out exact, because rebasing happens before scaling."""
    trace, _ = _import_fixture("sample_msr.csv")
    records = list(trace)
    deltas = [b.time - a.time for a, b in zip(records, records[1:])]
    # First two source ticks are exactly 1e6 ticks = 0.1 s apart.
    assert deltas[0] == pytest.approx(0.1, rel=1e-12)


def test_truncated_gzip_is_a_trace_error(tmp_path):
    payload = b"".join(
        f"{i * 10},usr,0,Read,{i * 4096},4096,10\n".encode()
        for i in range(200)
    )
    blob = gzip.compress(payload)
    path = tmp_path / "t.csv.gz"
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TraceError, match="unreadable"):
        snia_mod.parse(path)


# -- parser totality (property-based) --------------------------------------

# Any latin-1 byte except line terminators: "\n" would add a line, and
# "\r" would split one under universal-newline decoding.
_junk_line = st.text(
    alphabet=st.characters(
        min_codepoint=0, max_codepoint=255, blacklist_characters="\r\n"
    ),
    max_size=40,
)

_number = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**18).map(str),
    st.floats(allow_nan=True, allow_infinity=True).map(repr),
    st.just("banana"),
    st.just(""),
)

_csv_line = st.builds(
    lambda t, op, f, off, size: f"{t},{op},{f},{off},{size}",
    _number,
    st.sampled_from(["read", "WRITE", "wr", "delete", "noop", "", "re\x00ad"]),
    _number,
    _number,
    _number,
)

_blk_line = st.builds(
    lambda t, act, rwbs, sector, count:
        f"8,0 1 7 {t} 99 {act} {rwbs} {sector} + {count} [proc]",
    _number,
    st.sampled_from(["Q", "C", "G", "D", "X"]),
    st.sampled_from(["R", "W", "RM", "WS", "D", "N", ""]),
    _number,
    _number,
)

_snia_line = st.builds(
    lambda t, disk, op, off, size:
        f"{t},host,{disk},{op},{off},{size},100",
    _number,
    _number,
    st.sampled_from(["Read", "write", "Flush", ""]),
    _number,
    _number,
)


def _document(lines: list[str], newline: str) -> str:
    return "".join(line + newline for line in lines)


def _assert_total(parse, path, n_lines: int) -> None:
    """The totality contract: parse fully, or fail with line provenance."""
    try:
        trace, report = parse(path)
    except TraceError as exc:
        message = str(exc)
        assert LINE_REF.search(message) or str(path) in message, message
        return
    assert report.lines == n_lines
    assert report.lines == report.records + report.comments + report.filtered
    assert len(trace) == report.records
    times = [r.time for r in trace]
    assert times == sorted(times)
    assert all(t >= 0.0 for t in times)


@given(
    lines=st.lists(
        st.one_of(_csv_line, _junk_line, st.just(""), st.just("# comment")),
        max_size=8,
    ),
    newline=st.sampled_from(["\n", "\r\n"]),
)
def test_csv_parser_is_total(tmp_path_factory, lines, newline):
    tmp_path = tmp_path_factory.mktemp("csvtot")
    path = _write(tmp_path, _document(lines, newline))
    _assert_total(
        lambda p: csvmap_mod.parse(p, spec=INDEXED_SPEC), path, len(lines)
    )


@given(
    lines=st.lists(
        st.one_of(
            _blk_line, _junk_line, st.just("CPU0 (8,0):"), st.just("Total (8,0):")
        ),
        max_size=8,
    ),
    newline=st.sampled_from(["\n", "\r\n"]),
)
def test_blktrace_parser_is_total(tmp_path_factory, lines, newline):
    tmp_path = tmp_path_factory.mktemp("blktot")
    path = _write(tmp_path, _document(lines, newline), name="t.blk")
    _assert_total(blktrace_mod.parse, path, len(lines))


@given(
    lines=st.lists(
        st.one_of(_snia_line, _junk_line, st.just("# comment")),
        max_size=8,
    ),
    newline=st.sampled_from(["\n", "\r\n"]),
)
def test_snia_parser_is_total(tmp_path_factory, lines, newline):
    tmp_path = tmp_path_factory.mktemp("sniatot")
    path = _write(tmp_path, _document(lines, newline), name="t.msr")
    _assert_total(snia_mod.parse, path, len(lines))
