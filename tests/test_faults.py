"""Fault injection, bad-block growth, and power-loss crash recovery."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.hierarchy import build_hierarchy
from repro.core.simulator import simulate
from repro.devices.flashcard import FlashCard
from repro.devices.flashdisk import FlashDisk
from repro.errors import (
    ConfigurationError,
    FlashOutOfSpaceError,
    UnrecoverableDeviceError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import recovery_scan_s
from repro.faults.retry import RetryPolicy
from repro.flash.wear import erase_failure_probability
from repro.traces.record import BlockOp, Operation
from repro.units import KB


# -- plan validation ----------------------------------------------------------


def test_plan_rejects_out_of_range_rates():
    with pytest.raises(ConfigurationError):
        FaultPlan(transient_read_rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultPlan(transient_write_rate=-0.1)
    with pytest.raises(ConfigurationError):
        FaultPlan(bad_block_rate=2.0)


def test_plan_rejects_negative_knobs():
    with pytest.raises(ConfigurationError):
        FaultPlan(max_retries=-1)
    with pytest.raises(ConfigurationError):
        FaultPlan(retry_backoff_s=-0.1)
    with pytest.raises(ConfigurationError):
        FaultPlan(spare_segments=-1)
    with pytest.raises(ConfigurationError):
        FaultPlan(power_loss_times=(-5.0,))


def test_plan_sorts_power_loss_times():
    plan = FaultPlan(power_loss_times=(30.0, 10.0, 20.0))
    assert plan.power_loss_times == (10.0, 20.0, 30.0)


def test_plan_enabled_flag():
    assert not FaultPlan().enabled
    assert not FaultPlan.disabled().enabled
    assert FaultPlan(transient_read_rate=0.1).enabled
    assert FaultPlan(power_loss_times=(1.0,)).enabled


# -- retry policy -------------------------------------------------------------


def test_retry_backoff_is_exponential():
    policy = RetryPolicy(max_retries=3, backoff_s=0.01)
    assert policy.backoff(0) == pytest.approx(0.01)
    assert policy.backoff(1) == pytest.approx(0.02)
    assert policy.backoff(2) == pytest.approx(0.04)
    assert policy.total_backoff(3) == pytest.approx(0.07)


def test_retry_policy_validates():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_s=-1.0)


# -- injector ----------------------------------------------------------------


def test_injector_zero_rates_never_draw():
    injector = FaultInjector(FaultPlan())
    state_before = injector._rng.getstate()
    for _ in range(100):
        assert injector.read_failures() == (0, True)
        assert injector.write_failures() == (0, True)
        assert injector.erase_failure(50, 100) is False
    assert injector._rng.getstate() == state_before


def test_injector_is_deterministic():
    plan = FaultPlan(seed=7, transient_read_rate=0.3, transient_write_rate=0.3)
    a = [FaultInjector(plan).read_failures() for _ in range(50)]
    b = [FaultInjector(plan).read_failures() for _ in range(50)]
    assert a == b
    draws_a = FaultInjector(plan)
    draws_b = FaultInjector(plan)
    assert [draws_a.write_failures() for _ in range(200)] == [
        draws_b.write_failures() for _ in range(200)
    ]


def test_injector_retries_bounded_and_sometimes_unrecovered():
    plan = FaultPlan(seed=1, transient_write_rate=0.95, max_retries=2)
    injector = FaultInjector(plan)
    outcomes = [injector.write_failures() for _ in range(200)]
    assert all(retries <= 2 for retries, _ in outcomes)
    assert any(not recovered for _, recovered in outcomes)
    assert any(recovered for _, recovered in outcomes)


def test_erase_failure_probability_scales_with_wear():
    assert erase_failure_probability(0, 100_000, 0.0) == 0.0
    assert erase_failure_probability(99_999, 100_000, 0.0) == 0.0  # no base rate
    low = erase_failure_probability(10, 100_000, 0.01)
    high = erase_failure_probability(90_000, 100_000, 0.01)
    assert 0.0 < low < high <= 1.0
    assert erase_failure_probability(100_000, 100_000, 0.01) == 1.0


def test_power_loss_schedule_pops_in_order():
    injector = FaultInjector(FaultPlan(power_loss_times=(5.0, 1.0, 3.0)))
    assert injector.next_power_loss(0.5) is None
    assert injector.next_power_loss(4.0) == 1.0
    assert injector.next_power_loss(4.0) == 3.0
    assert injector.next_power_loss(4.0) is None
    assert injector.pending_power_losses == 1
    assert injector.next_power_loss(float("inf")) == 5.0


# -- retries through the hierarchy -------------------------------------------


def _hierarchy(device="intel-datasheet", plan=None, dram_bytes=0, sram_bytes=0):
    config = SimulationConfig(
        device=device,
        dram_bytes=dram_bytes,
        sram_bytes=sram_bytes,
        fault_plan=plan,
    )
    injector = FaultInjector(plan) if plan is not None and plan.enabled else None
    return build_hierarchy(config, KB, 64, injector=injector)


def test_transient_write_faults_cost_time_and_are_counted():
    plan = FaultPlan(seed=3, transient_write_rate=0.5)
    faulty = _hierarchy(plan=plan)
    clean = _hierarchy()
    op = BlockOp(time=0.0, op=Operation.WRITE, file_id=1, blocks=(0, 1), size=2 * KB)
    slow = faulty.write(op)
    fast = clean.write(op)
    meter = faulty.reliability
    assert meter.write_retries > 0
    assert meter.retry_delay_s > 0.0
    assert slow > fast


def test_fail_fast_raises_unrecoverable():
    plan = FaultPlan(seed=1, transient_write_rate=1.0, max_retries=1, fail_fast=True)
    hierarchy = _hierarchy(plan=plan)
    op = BlockOp(time=0.0, op=Operation.WRITE, file_id=1, blocks=(0,), size=KB)
    with pytest.raises(UnrecoverableDeviceError):
        hierarchy.write(op)


# -- bad-block growth ---------------------------------------------------------


def _worn_card(plan: FaultPlan) -> FlashCard:
    hierarchy = _hierarchy(plan=plan)
    card = hierarchy.device
    assert isinstance(card, FlashCard)
    # Churn overwrites until cleaning has recycled segments many times.
    now = 0.0
    for round_index in range(200):
        op = BlockOp(
            time=now,
            op=Operation.WRITE,
            file_id=1,
            blocks=tuple(range(16)),
            size=16 * KB,
        )
        now += max(0.5, hierarchy.write(op)) + 0.5
    return card


def test_bad_blocks_consume_spares_then_retire():
    # With this seed the churn hits exactly three erase failures: the first
    # two consume the spares (capacity preserved), the third retires the
    # segment outright (capacity shrinks).
    plan = FaultPlan(seed=5, bad_block_rate=0.02, spare_segments=2)
    card = _worn_card(plan)
    assert card.erase_failures == 3
    assert card.remapped_segments == 2
    assert card.retired_segments == 1
    assert card.spares_remaining == 0


def test_out_of_space_error_mentions_bad_blocks():
    plan = FaultPlan(seed=2, bad_block_rate=0.9, spare_segments=0)
    with pytest.raises(FlashOutOfSpaceError, match="retired as bad blocks"):
        _worn_card(plan)


def test_flash_disk_retires_sectors():
    plan = FaultPlan(seed=4, bad_block_rate=0.5)
    hierarchy = _hierarchy(device="sdp5a-datasheet", plan=plan)
    disk = hierarchy.device
    assert isinstance(disk, FlashDisk)
    now = 0.0
    for _ in range(100):
        op = BlockOp(
            time=now,
            op=Operation.WRITE,
            file_id=1,
            blocks=tuple(range(8)),
            size=8 * KB,
        )
        now += max(0.2, hierarchy.write(op)) + 1.0
    hierarchy.advance(now + 60.0)  # let background erasure run
    assert disk.sector_map.retired_sectors > 0
    assert "retired_sectors" in disk.stats()


# -- crash recovery -----------------------------------------------------------


def test_crash_drops_dram_and_counts_losses():
    plan = FaultPlan(seed=0, power_loss_times=(10.0,))
    hierarchy = _hierarchy(plan=plan, dram_bytes=64 * KB)
    op = BlockOp(time=0.0, op=Operation.WRITE, file_id=1, blocks=(0, 1), size=2 * KB)
    hierarchy.write(op)
    read = BlockOp(time=1.0, op=Operation.READ, file_id=1, blocks=(0, 1), size=2 * KB)
    hierarchy.read(read)
    hierarchy.crash(10.0)
    meter = hierarchy.reliability
    assert meter.power_losses == 1
    assert meter.dropped_cache_blocks >= 2
    assert meter.recovery_time_s >= recovery_scan_s(hierarchy.device, plan)
    assert meter.recovery_energy_j > 0.0
    # The dropped blocks really are gone: the next read misses.
    hits_before = hierarchy.dram.hits
    hierarchy.read(
        BlockOp(time=20.0, op=Operation.READ, file_id=1, blocks=(0, 1), size=2 * KB)
    )
    assert hierarchy.dram.hits == hits_before


def test_crash_replays_sram_dirty_blocks():
    plan = FaultPlan(seed=0, power_loss_times=(100.0,))
    hierarchy = _hierarchy(
        device="cu140-datasheet", plan=plan, sram_bytes=32 * KB
    )
    # Let the disk spin down, then write: the SRAM holds the blocks.
    op = BlockOp(time=60.0, op=Operation.WRITE, file_id=1, blocks=(0, 1), size=2 * KB)
    hierarchy.write(op)
    assert hierarchy.sram.dirty_count == 2
    writes_before = hierarchy.device.writes
    hierarchy.crash(100.0)
    meter = hierarchy.reliability
    assert meter.replayed_blocks == 2
    assert hierarchy.sram.dirty_count == 0
    assert hierarchy.sram.replays == 1
    assert hierarchy.device.writes == writes_before + 1  # the replay write


def test_crash_counts_torn_write():
    plan = FaultPlan(seed=0, power_loss_times=(0.001,))
    hierarchy = _hierarchy(device="cu140-datasheet", plan=plan)
    op = BlockOp(
        time=0.0, op=Operation.WRITE, file_id=1, blocks=tuple(range(64)), size=64 * KB
    )
    hierarchy.write(op)
    assert hierarchy.device.busy_until > 0.001
    hierarchy.crash(0.001)
    assert hierarchy.reliability.torn_writes == 1
    # The device carries on afterwards: a later write still completes.
    late = BlockOp(time=5.0, op=Operation.WRITE, file_id=1, blocks=(0,), size=KB)
    assert hierarchy.write(late) >= 0.0


def test_write_back_crash_loses_dirty_blocks():
    config = SimulationConfig(
        device="cu140-datasheet",
        dram_bytes=64 * KB,
        sram_bytes=0,
        write_back=True,
        fault_plan=FaultPlan(power_loss_times=(10.0,)),
    )
    injector = FaultInjector(config.fault_plan)
    hierarchy = build_hierarchy(config, KB, 64, injector=injector)
    op = BlockOp(time=0.0, op=Operation.WRITE, file_id=1, blocks=(0, 1, 2), size=3 * KB)
    hierarchy.write(op)
    assert hierarchy.dram.dirty_blocks == 3
    hierarchy.crash(10.0)
    assert hierarchy.reliability.lost_dirty_blocks == 3
    assert hierarchy.dram.dirty_blocks == 0


# -- end-to-end ----------------------------------------------------------------


def test_zero_fault_plan_is_bit_identical(small_synth_trace):
    for device in ("cu140-datasheet", "intel-datasheet", "sdp5-datasheet"):
        clean = simulate(small_synth_trace, SimulationConfig(device=device))
        nulled = simulate(
            small_synth_trace,
            SimulationConfig(device=device, fault_plan=FaultPlan()),
        )
        assert nulled.reliability is None
        assert nulled.energy_j == clean.energy_j
        assert nulled.energy_breakdown == clean.energy_breakdown
        assert nulled.read_response == clean.read_response
        assert nulled.write_response == clean.write_response
        assert nulled.device_stats == clean.device_stats


def test_faulted_run_reports_nonzero_metrics(small_synth_trace):
    plan = FaultPlan(
        seed=3,
        transient_read_rate=0.02,
        transient_write_rate=0.02,
        power_loss_times=(small_synth_trace.duration * 0.5,),
    )
    result = simulate(
        small_synth_trace,
        SimulationConfig(device="intel-datasheet", fault_plan=plan),
    )
    rel = result.reliability
    assert rel is not None
    assert rel.total_retries > 0
    assert rel.power_losses == 1
    assert rel.recovery_time_s > 0.0
    assert result.to_dict()["reliability"]["power_losses"] == 1


def test_same_seed_same_run_different_seed_differs(small_synth_trace):
    def run(seed):
        plan = FaultPlan(
            seed=seed,
            transient_read_rate=0.05,
            transient_write_rate=0.05,
            power_loss_times=(small_synth_trace.duration * 0.6,),
        )
        return simulate(
            small_synth_trace,
            SimulationConfig(device="intel-datasheet", fault_plan=plan),
        )

    first, again, other = run(1), run(1), run(2)
    assert first.to_dict() == again.to_dict()
    assert first.reliability != other.reliability


def test_recovery_energy_lands_in_recovery_bucket(small_synth_trace):
    plan = FaultPlan(seed=0, power_loss_times=(small_synth_trace.duration * 0.5,))
    result = simulate(
        small_synth_trace,
        SimulationConfig(device="intel-datasheet", fault_plan=plan),
    )
    assert result.energy_breakdown["device"].get("recovery", 0.0) > 0.0
