"""Percentile estimation in the response accumulator."""

import pytest

from repro.core.metrics import ResponseAccumulator


def test_exact_percentiles_small_sample():
    acc = ResponseAccumulator()
    for value in range(100):
        acc.add(float(value))
    assert acc.percentile(0.0) == 0.0
    assert acc.percentile(0.5) == 50.0
    assert acc.percentile(0.95) == 95.0
    assert acc.percentile(1.0) == 99.0


def test_percentile_empty():
    assert ResponseAccumulator().percentile(0.5) == 0.0


def test_percentile_invalid_quantile():
    acc = ResponseAccumulator()
    acc.add(1.0)
    with pytest.raises(ValueError):
        acc.percentile(1.5)


def test_snapshot_carries_percentiles():
    acc = ResponseAccumulator()
    for value in (1.0, 2.0, 3.0, 4.0):
        acc.add(value)
    stats = acc.snapshot()
    assert stats.p50_s == 3.0
    assert stats.p95_s == 4.0
    assert stats.p95_ms == pytest.approx(4000.0)


def test_reservoir_estimates_large_stream():
    acc = ResponseAccumulator()
    for value in range(100_000):
        acc.add(float(value))
    # Uniform stream: p95 of the reservoir should sit near 95k.
    estimate = acc.percentile(0.95)
    assert 85_000 <= estimate <= 100_000


def test_reservoir_is_deterministic():
    def build():
        acc = ResponseAccumulator()
        for value in range(50_000):
            acc.add(float(value % 997))
        return acc.percentile(0.9)

    assert build() == build()


def test_reset_clears_reservoir():
    acc = ResponseAccumulator()
    for value in range(100):
        acc.add(float(value))
    acc.reset()
    assert acc.percentile(0.5) == 0.0


def test_percentiles_bounded_by_extremes():
    acc = ResponseAccumulator()
    for value in (5.0, 1.0, 9.0, 3.0):
        acc.add(value)
    assert 1.0 <= acc.percentile(0.25) <= 9.0
    assert acc.percentile(0.99) <= acc.max


def test_simulation_results_expose_percentiles(small_synth_trace):
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate

    result = simulate(small_synth_trace, SimulationConfig(device="sdp5-datasheet"))
    stats = result.write_response
    assert 0.0 < stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s
