"""Trace transformation utilities."""

import pytest

from repro.errors import TraceError
from repro.traces.record import Operation, TraceRecord
from repro.traces.trace import Trace
from repro.traces.transform import (
    concat,
    filter_ops,
    interleave,
    scale_time,
    time_slice,
)
from repro.units import KB


def simple_trace(name="t", times=(0.0, 1.0, 2.0), file_base=0):
    records = [
        TraceRecord(time=t, op=Operation.READ, file_id=file_base + i, size=KB)
        for i, t in enumerate(times)
    ]
    return Trace(name, records, block_size=KB)


class TestTimeSlice:
    def test_window_rebased(self):
        sliced = time_slice(simple_trace(), 1.0, 3.0)
        assert len(sliced) == 2
        assert sliced[0].time == 0.0
        assert sliced[1].time == 1.0

    def test_half_open_interval(self):
        sliced = time_slice(simple_trace(), 0.0, 2.0)
        assert len(sliced) == 2  # record at t=2.0 excluded

    def test_empty_window_rejected(self):
        with pytest.raises(TraceError):
            time_slice(simple_trace(), 2.0, 2.0)


class TestScaleTime:
    def test_stretch(self):
        scaled = scale_time(simple_trace(), 2.0)
        assert [r.time for r in scaled] == [0.0, 2.0, 4.0]

    def test_compress(self):
        scaled = scale_time(simple_trace(), 0.5)
        assert scaled.duration == pytest.approx(1.0)

    def test_invalid_factor(self):
        with pytest.raises(TraceError):
            scale_time(simple_trace(), 0.0)


class TestFilterOps:
    def test_keep_reads_only(self):
        records = [
            TraceRecord(time=0, op=Operation.READ, file_id=1, size=KB),
            TraceRecord(time=1, op=Operation.WRITE, file_id=1, size=KB),
            TraceRecord(time=2, op=Operation.DELETE, file_id=1),
        ]
        trace = Trace("mixed", records, block_size=KB)
        reads = filter_ops(trace, [Operation.READ])
        assert len(reads) == 1
        assert reads[0].op is Operation.READ


class TestConcat:
    def test_timeline_appended_with_gap(self):
        combined = concat([simple_trace("a"), simple_trace("b")], gap_s=10.0)
        assert len(combined) == 6
        assert combined[3].time == pytest.approx(12.0)  # 2.0 + 10.0 + 0.0

    def test_file_spaces_disjoint(self):
        combined = concat([simple_trace("a"), simple_trace("b")])
        first_files = {record.file_id for record in combined[:3]}
        second_files = {record.file_id for record in combined[3:]}
        assert not first_files & second_files

    def test_mismatched_block_sizes_rejected(self):
        other = Trace("o", [], block_size=512)
        with pytest.raises(TraceError):
            concat([simple_trace(), other])

    def test_empty_list_rejected(self):
        with pytest.raises(TraceError):
            concat([])


class TestInterleave:
    def test_merged_by_timestamp(self):
        a = simple_trace("a", times=(0.0, 2.0))
        b = simple_trace("b", times=(1.0, 3.0))
        merged = interleave([a, b])
        assert [record.time for record in merged] == [0.0, 1.0, 2.0, 3.0]

    def test_file_spaces_disjoint(self):
        a = simple_trace("a")
        b = simple_trace("b")
        merged = interleave([a, b])
        assert len({record.file_id for record in merged}) == 6

    def test_result_is_valid_trace(self):
        merged = interleave([simple_trace("a"), simple_trace("b", times=(0.5, 1.5))])
        # Trace construction validates monotone time; also simulable:
        from repro.core.config import SimulationConfig
        from repro.core.simulator import simulate

        result = simulate(merged, SimulationConfig(warm_fraction=0.0))
        assert result.n_reads == len(merged)

    def test_single_trace_passthrough(self):
        merged = interleave([simple_trace("a")])
        assert len(merged) == 3


class TestComposition:
    def test_slice_of_scaled_concat(self):
        combined = concat([simple_trace("a"), simple_trace("b")], gap_s=1.0)
        fast = scale_time(combined, 0.5)
        window = time_slice(fast, 0.0, 1.1)
        assert len(window) == 3

    def test_interleaved_workloads_simulate(self):
        """Two concurrent applications on one storage device."""
        from repro.core.config import SimulationConfig
        from repro.core.simulator import simulate
        from repro.traces.synthetic import SyntheticWorkload

        a = SyntheticWorkload().generate(n_ops=300, seed=1)
        b = SyntheticWorkload().generate(n_ops=300, seed=2)
        merged = interleave([a, b])
        result = simulate(merged, SimulationConfig(device="intel-datasheet"))
        assert result.energy_j > 0
