"""The chaos harness, and the recovery paths it exists to prove.

The acceptance scenario (ISSUE 6): with a seeded plan that kills a
worker, hangs a unit past its timeout, exception-crashes a unit, and
corrupts a cache entry mid-sweep, ``repro run`` followed by ``repro run
--resume`` yields every unit ``ok``, results byte-identical to an
undisturbed ``jobs=1`` run, and a manifest recording every
retry/requeue/degradation event.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.engine import (
    ChaosAction,
    ChaosError,
    ChaosPlan,
    ExecutionPolicy,
    ResultCache,
    RunManifest,
    TraceStore,
    WorkUnit,
    decompose,
    execute,
    read_manifest,
    resume_spec,
    summarize,
)
from repro.engine import chaos as chaos_mod
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry

SMALL = 0.05
#: Cheap drivers: table2 is static, fig4 simulates the short dos trace.
IDS = ("table2", "fig4")


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    chaos_mod.set_active(None)


# -- the plan itself -------------------------------------------------------

class TestChaosPlan:
    def test_random_is_seed_deterministic(self, tmp_path):
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        a = ChaosPlan.random(units, seed=7, state_dir=tmp_path)
        b = ChaosPlan.random(units, seed=7, state_dir=tmp_path)
        assert a.actions == b.actions
        c = ChaosPlan.random(units, seed=8, state_dir=tmp_path)
        assert a.actions != c.actions

    def test_random_draws_distinct_victims(self, tmp_path):
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        plan = ChaosPlan.random(units, seed=3, state_dir=tmp_path)
        victims = [(a.experiment_id, a.seed) for a in plan.actions]
        assert len(victims) == len(set(victims)) == 4
        assert {a.mode for a in plan.actions} == {"kill", "hang", "crash",
                                                  "corrupt"}

    def test_random_rejects_too_few_units(self, tmp_path):
        with pytest.raises(ConfigurationError, match="victims"):
            ChaosPlan.random(decompose(("table2",), scale=SMALL),
                             seed=1, state_dir=tmp_path)

    def test_json_round_trip(self, tmp_path):
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        plan = ChaosPlan.random(units, seed=7, state_dir=tmp_path / "state",
                                hang_s=12.5)
        loaded = ChaosPlan.load(plan.save(tmp_path / "plan.json"))
        assert loaded == plan

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            ChaosAction(mode="nuke", experiment_id="table2")

    def test_claims_are_one_shot(self, tmp_path):
        action = ChaosAction(mode="crash", experiment_id="x", times=2)
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path), actions=(action,))
        assert plan.claim(action)
        assert plan.claim(action)
        assert not plan.claim(action)  # both slots spent, forever

    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps({"k": "v" * 100}))
        assert chaos_mod.corrupt_file(path)
        with pytest.raises(ValueError):
            json.loads(path.read_text())
        assert not chaos_mod.corrupt_file(tmp_path / "missing.json")


class TestInjection:
    def test_crash_raises_once(self, tmp_path):
        unit = WorkUnit("table2", scale=SMALL, seed=1)
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path), actions=(
            ChaosAction(mode="crash", experiment_id="table2", seed=1),
        ))
        chaos_mod.set_active(plan)
        with pytest.raises(ChaosError, match="injected crash"):
            chaos_mod.maybe_inject(unit)
        chaos_mod.maybe_inject(unit)  # claimed: second attempt runs clean

    def test_kill_and_hang_never_fire_in_the_parent(self, tmp_path):
        unit = WorkUnit("table2", scale=SMALL, seed=1)
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path), hang_s=3600.0,
                         actions=(
            ChaosAction(mode="kill", experiment_id="table2", seed=1),
            ChaosAction(mode="hang", experiment_id="table2", seed=1),
        )).bound_to_parent()
        chaos_mod.set_active(plan)
        chaos_mod.maybe_inject(unit)  # would exit or sleep an hour otherwise
        assert not plan.claim(plan.actions[0]) or True  # still alive is the test

    def test_no_plan_is_a_no_op(self):
        chaos_mod.set_active(None)
        assert chaos_mod.active() is None
        chaos_mod.maybe_inject(WorkUnit("table2", scale=SMALL))


# -- recovery paths, one by one --------------------------------------------

class TestRecoveryPaths:
    def test_killed_worker_breaks_only_the_in_flight_window(self, tmp_path):
        """A SIGKILL'd worker requeues the in-flight units — with the
        dead pid on record — and never smears a parent traceback over
        the rest of the sweep (satellite: breakage attribution)."""
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"), actions=(
            ChaosAction(mode="kill", experiment_id="table2", seed=1),
        ))
        registry = MetricsRegistry()
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            outcomes = execute(units, jobs=2, manifest=manifest,
                               policy=ExecutionPolicy(retries=0),
                               chaos=plan, metrics=registry)
        assert all(outcome.ok for outcome in outcomes)
        assert sum(outcome.requeued for outcome in outcomes) >= 1
        assert registry.get("engine_pool_rebuilds_total").value >= 1
        events = [r for r in read_manifest(tmp_path / "m.jsonl")
                  if r["record"] == "event"]
        requeues = [e for e in events if e["kind"] == "requeue"]
        assert requeues, "breakage must be recorded"
        for event in requeues:
            # only the in-flight window, with the dead worker pid
            assert 1 <= len(event["units"]) <= 2
            assert event["reason"] == "pool-breakage"
            assert all(isinstance(pid, int) for pid in event["dead_workers"])
        assert any(e["kind"] == "rebuild" for e in events)

    def test_hung_unit_times_out_and_retries(self, tmp_path):
        units = decompose(IDS, scale=SMALL, seeds=(1,))
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"),
                         hang_s=30.0, actions=(
            ChaosAction(mode="hang", experiment_id="table2", seed=1),
        ))
        registry = MetricsRegistry()
        outcomes = execute(
            units, jobs=2, chaos=plan, metrics=registry,
            policy=ExecutionPolicy(timeout_s=2.0, retries=1, backoff_s=0.01),
        )
        assert all(outcome.ok for outcome in outcomes)
        [victim] = [o for o in outcomes if o.unit.seed == 1
                    and o.unit.experiment_id == "table2"]
        assert victim.retries == 1
        assert registry.get("engine_unit_timeouts_total").value == 1

    def test_timeout_without_budget_is_terminal(self, tmp_path):
        units = decompose(("table2",), scale=SMALL, seeds=(1,))
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"),
                         hang_s=30.0, actions=(
            ChaosAction(mode="hang", experiment_id="table2", seed=1),
        ))
        [outcome] = execute(
            units, jobs=2, chaos=plan,
            policy=ExecutionPolicy(timeout_s=1.5, retries=0),
        )
        assert not outcome.ok
        assert "wall-clock timeout" in outcome.error

    def test_repeated_breakage_degrades_to_serial(self, tmp_path):
        """K consecutive pool breakages fall back to in-process serial
        execution; the sweep still completes."""
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"), actions=(
            ChaosAction(mode="kill", experiment_id="table2", seed=1, times=5),
        ))
        registry = MetricsRegistry()
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            outcomes = execute(units, jobs=2, manifest=manifest, chaos=plan,
                               policy=ExecutionPolicy(max_rebuilds=1),
                               metrics=registry)
        assert all(outcome.ok for outcome in outcomes)
        assert registry.get("engine_pool_degradations_total").value == 1
        events = [r for r in read_manifest(tmp_path / "m.jsonl")
                  if r["record"] == "event"]
        [degrade] = [e for e in events if e["kind"] == "degrade"]
        assert degrade["after_rebuilds"] == 1

    def test_crash_is_an_ordinary_transient_failure(self, tmp_path):
        units = decompose(("table2",), scale=SMALL, seeds=(1,))
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"), actions=(
            ChaosAction(mode="crash", experiment_id="table2", seed=1),
        ))
        [outcome] = execute(units, jobs=2, chaos=plan,
                            policy=ExecutionPolicy(retries=1, backoff_s=0.01))
        assert outcome.ok
        assert outcome.retries == 1

    def test_corrupted_entry_quarantined_on_replay(self, tmp_path):
        units = decompose(("table2",), scale=SMALL, seeds=(1,))
        cache = ResultCache(tmp_path / "cache")
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"), actions=(
            ChaosAction(mode="corrupt", experiment_id="table2", seed=1),
        ))
        first = execute(units, jobs=1, cache=cache, chaos=plan)
        assert first[0].ok  # corruption lands *after* the unit finished
        with RunManifest(tmp_path / "m.jsonl") as manifest:
            second = execute(units, jobs=1, cache=cache, manifest=manifest)
        assert second[0].ok
        assert second[0].cache == "miss"  # quarantined, recomputed
        assert cache.quarantined == 1
        events = [r for r in read_manifest(tmp_path / "m.jsonl")
                  if r["record"] == "event"]
        assert [e["kind"] for e in events] == ["quarantine"]
        assert first[0].result.render() == second[0].result.render()


# -- the acceptance scenario, API level ------------------------------------

class TestChaosAcceptance:
    def test_chaotic_sweep_resumes_byte_identical(self, tmp_path):
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))

        # undisturbed serial ground truth
        baseline = execute(units, jobs=1)
        truth = {o.unit: o.result.render() for o in baseline}

        plan = ChaosPlan.random(units, seed=7,
                                state_dir=tmp_path / "chaos-state",
                                hang_s=30.0)
        assert {a.mode for a in plan.actions} == {"kill", "hang", "crash",
                                                  "corrupt"}
        cache = ResultCache(tmp_path / "cache")
        policy = ExecutionPolicy(timeout_s=10.0, retries=2, backoff_s=0.01)
        with RunManifest(tmp_path / "m1.jsonl") as manifest:
            disturbed = execute(units, jobs=2, cache=cache,
                                trace_store=TraceStore(tmp_path / "cache"),
                                manifest=manifest, policy=policy, chaos=plan)
        counts = summarize(disturbed)
        assert counts["ok"] == len(units)
        assert counts["retries"] + counts["requeued"] >= 1

        # resume from the manifest: completed units replay from cache,
        # the chaos-corrupted entry quarantines and recomputes
        spec = resume_spec(tmp_path / "m1.jsonl")
        resumed_units = decompose(spec["experiment_ids"], scale=spec["scale"],
                                  seeds=tuple(spec["seeds"]))
        with RunManifest(tmp_path / "m2.jsonl") as manifest:
            resumed = execute(resumed_units, jobs=2, cache=cache,
                              manifest=manifest, policy=policy,
                              resumed_from=str(tmp_path / "m1.jsonl"))
        assert all(o.ok for o in resumed)
        final = {o.unit: o.result.render() for o in resumed}
        for unit in units:
            assert final[unit] == truth[unit], unit.label

        # every disturbance is on the record
        records = (read_manifest(tmp_path / "m1.jsonl")
                   + read_manifest(tmp_path / "m2.jsonl"))
        kinds = {r["kind"] for r in records if r["record"] == "event"}
        assert "chaos-corrupt" in kinds
        assert "quarantine" in kinds
        assert kinds & {"retry", "requeue"}
        unit_records = [r for r in records if r["record"] == "unit"]
        assert all("retries" in r and "requeued" in r for r in unit_records)
        [run2] = [r for r in read_manifest(tmp_path / "m2.jsonl")
                  if r["record"] == "run"]
        assert run2["resumed_from"] == str(tmp_path / "m1.jsonl")


# -- the acceptance scenario, CLI level ------------------------------------

class TestCliResume:
    def test_interrupted_run_resumes_to_completion(self, tmp_path, capsys):
        """SIGKILL a worker mid-run and hang another unit past a timeout
        it has no budget to retry: the first ``repro run`` exits 1 with
        the hang terminal, ``repro run --resume`` completes all units
        from cache + one recompute."""
        plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"),
                         hang_s=30.0, actions=(
            ChaosAction(mode="kill", experiment_id="table2", seed=1),
            ChaosAction(mode="hang", experiment_id="fig4", seed=1),
        ))
        plan_path = plan.save(tmp_path / "plan.json")
        cache_dir = str(tmp_path / "cache")
        m1 = str(tmp_path / "m1.jsonl")

        code = main(["run", "table2", "fig4", "--scale", str(SMALL),
                     "--seed", "1", "--seed", "2", "--jobs", "2",
                     "--timeout", "2", "--retries", "0",
                     "--chaos", str(plan_path),
                     "--cache-dir", cache_dir, "--manifest", m1])
        capsys.readouterr()
        assert code == 1  # the hung unit had no retry budget
        spec = resume_spec(m1)
        assert len(spec["completed"]) == 3

        m2 = str(tmp_path / "m2.jsonl")
        code = main(["run", "--resume", m1, "--jobs", "2",
                     "--manifest", m2])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed from" in out
        records = read_manifest(m2)
        unit_records = [r for r in records if r["record"] == "unit"]
        assert sorted(r["cache"] for r in unit_records) == \
            ["hit", "hit", "hit", "miss"]
        assert all(r["outcome"] == "ok" for r in unit_records)

    def test_resumed_chaos_run_matches_undisturbed_serial(self, tmp_path, capsys):
        """CLI end to end: chaos run (recovering in-run) then --resume;
        the streamed report equals an undisturbed ``--jobs 1`` run's."""
        units = decompose(IDS, scale=SMALL, seeds=(1, 2))
        plan = ChaosPlan.random(units, seed=5,
                                state_dir=tmp_path / "state", hang_s=30.0)
        plan_path = plan.save(tmp_path / "plan.json")
        cache_dir = str(tmp_path / "cache")
        base_out = tmp_path / "base.txt"
        chaos_out = tmp_path / "chaos.txt"
        resume_out = tmp_path / "resume.txt"

        args = ["run", "table2", "fig4", "--scale", str(SMALL),
                "--seed", "1", "--seed", "2"]
        assert main(args + ["--jobs", "1", "--no-cache", "--quiet",
                            "--manifest", str(tmp_path / "mb.jsonl"),
                            "--output", str(base_out)]) == 0
        assert main(args + ["--jobs", "2", "--timeout", "10", "--retries", "2",
                            "--chaos", str(plan_path), "--quiet",
                            "--cache-dir", cache_dir,
                            "--manifest", str(tmp_path / "m1.jsonl"),
                            "--output", str(chaos_out)]) == 0
        assert main(["run", "--resume", str(tmp_path / "m1.jsonl"),
                     "--jobs", "2", "--quiet",
                     "--manifest", str(tmp_path / "m2.jsonl"),
                     "--output", str(resume_out)]) == 0
        capsys.readouterr()
        assert chaos_out.read_bytes() == base_out.read_bytes()
        assert resume_out.read_bytes() == base_out.read_bytes()

    def test_resume_refuses_no_cache(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({
            "record": "run", "schema": 2, "jobs": 1, "scale": SMALL,
            "seeds": [None], "experiment_ids": ["table2"],
            "cache_dir": None,
        }) + "\n")
        assert main(["run", "--resume", str(path), "--no-cache"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_rejects_old_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"record": "run", "jobs": 1,
                                    "scale": SMALL, "seeds": [None]}) + "\n")
        assert main(["run", "--resume", str(path)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_bad_chaos_plan_rejected(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        assert main(["run", "table2", "--chaos", str(path)]) == 2
        assert "chaos" in capsys.readouterr().err


def test_env_activation(tmp_path, monkeypatch):
    """$REPRO_CHAOS_PLAN activates a plan in a fresh process (the
    documented hook for breaking engines the CLI did not start)."""
    plan = ChaosPlan(seed=1, state_dir=str(tmp_path / "state"), actions=(
        ChaosAction(mode="crash", experiment_id="table2", seed=1),
    ))
    path = plan.save(tmp_path / "plan.json")
    chaos_mod.set_active(None)
    monkeypatch.setenv(chaos_mod.CHAOS_PLAN_ENV, str(path))
    loaded = chaos_mod.active()
    assert loaded is not None
    assert loaded.actions == plan.actions
