"""Fleet fast path: exact parameter sampling, invariance properties,
columnar transport, and the population-equivalence contract.

The heavyweight fast-vs-reference gate at contract scale runs in the CI
fleet-throughput job (``benchmarks/fleet_throughput.py --verify``); the
contract test here runs a smaller-but-still-meaningful fleet so tier-1
stays fast.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ResultCache, RunManifest
from repro.errors import ConfigurationError
from repro.fleet import (
    FleetSpec,
    MAX_SHARD_DEVICES,
    aggregate_columns,
    aggregate_rows,
    canonical_json,
    compare_summaries,
    default_shards,
    merge_columns,
    pack_columns,
    run_fleet,
    sample_device,
    sample_device_batch,
    simulate_shard_fast,
)
from repro.fleet.contract import TOLERANCES
from repro.fleet.population import METRIC_FIELDS
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import parse_request

SPEC = FleetSpec(devices=48, seed=11, scale=0.1, ops_per_device=150)

GOLDEN = Path(__file__).parent / "golden" / "fleet_fast_12.json"


# -- exact parameter sampling ------------------------------------------------


class TestSampleBatch:
    def test_matches_reference_sampler_exactly(self):
        # Every drawn parameter byte-identical to sample_device's
        # random.Random walk, across a parameter-diverse population.
        spec = FleetSpec(devices=300, seed=5, scale=0.3, ops_per_device=900)
        batch = sample_device_batch(spec, np.arange(spec.devices))
        from repro.fleet.synth import DEVICE_NAMES, WORKLOAD_NAMES

        for i in range(spec.devices):
            ref = sample_device(spec, i)
            assert WORKLOAD_NAMES[batch.workload[i]] == ref.workload
            assert DEVICE_NAMES[batch.device[i]] == ref.device
            assert int(batch.n_ops[i]) == ref.n_ops
            assert int(batch.dram_bytes[i]) == ref.dram_bytes
            assert int(batch.sram_bytes[i]) == ref.sram_bytes
            assert float(batch.spin_down_timeout_s[i]) == ref.spin_down_timeout_s
            assert float(batch.flash_utilization[i]) == ref.flash_utilization
            assert int(batch.seed[i]) == ref.seed

    def test_batch_is_slice_invariant(self):
        spec = FleetSpec(devices=64, seed=9, scale=0.1, ops_per_device=200)
        whole = sample_device_batch(spec, np.arange(64))
        part = sample_device_batch(spec, np.arange(17, 29))
        np.testing.assert_array_equal(whole.n_ops[17:29], part.n_ops)
        np.testing.assert_array_equal(whole.workload[17:29], part.workload)


# -- invariance of the fast summary ------------------------------------------


class TestFastInvariance:
    def test_byte_identical_across_shard_counts(self):
        one = run_fleet(SPEC, jobs=1, shards=1, fast=True)
        many = run_fleet(SPEC, jobs=1, shards=5, fast=True)
        assert one.ok and many.ok
        assert canonical_json(one.summary) == canonical_json(many.summary)

    def test_byte_identical_through_cache_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_fleet(SPEC, jobs=1, shards=3, cache=cache, fast=True)
        replay = run_fleet(SPEC, jobs=1, shards=3, cache=cache, fast=True)
        assert [o.cache for o in replay.outcomes] == ["hit"] * 3
        assert all(o.result.columns is not None for o in replay.outcomes)
        assert canonical_json(first.summary) == canonical_json(replay.summary)

    def test_fast_and_reference_cache_keys_differ(self, tmp_path):
        # fast=True must never replay a reference shard (or vice versa).
        cache = ResultCache(tmp_path)
        run_fleet(SPEC, jobs=1, shards=2, cache=cache)
        fast = run_fleet(SPEC, jobs=1, shards=2, cache=cache, fast=True)
        assert [o.cache for o in fast.outcomes] == ["miss", "miss"]

    def test_transport_invariant(self):
        # Summary aggregated from the columnar payload is byte-identical
        # to one aggregated from the human device table.
        rows, _ = simulate_shard_fast(SPEC, range(SPEC.devices))
        via_rows = aggregate_rows(rows)
        via_columns = aggregate_columns(pack_columns(rows))
        assert json.dumps(via_rows, sort_keys=True) == json.dumps(
            via_columns, sort_keys=True
        )


# -- columnar payload ---------------------------------------------------------


class TestColumns:
    def test_merge_sorts_and_rejects_overlap(self):
        rows, _ = simulate_shard_fast(SPEC, range(8))
        front, back = pack_columns(rows[:5]), pack_columns(rows[5:])
        merged = merge_columns([back, front])  # out-of-order shards
        assert merged["device"].tolist() == list(range(8))
        with pytest.raises(ConfigurationError):
            merge_columns([front, front])

    def test_wear_is_nan_for_non_cards(self):
        rows, _ = simulate_shard_fast(SPEC, range(SPEC.devices))
        columns = pack_columns(rows)
        nan_count = int(np.isnan(columns["wear_max"]).sum())
        assert nan_count == sum(1 for r in rows if r["wear_max"] is None)

    def test_schema_version_checked(self):
        rows, _ = simulate_shard_fast(SPEC, range(4))
        columns = pack_columns(rows)
        columns["schema"] = 99
        with pytest.raises(ConfigurationError):
            merge_columns([columns])


# -- the population-equivalence contract --------------------------------------


class TestContract:
    def test_fast_agrees_with_reference(self):
        # MIN_CONTRACT_DEVICES: the smallest fleet where population
        # statistics outrun per-seed sampling noise (smaller fleets blow
        # the energy tolerances on tail luck alone).  The full-scale
        # gate (2048+ devices) runs in CI's fleet-throughput job via
        # benchmarks/fleet_throughput.py --verify.
        spec = FleetSpec(devices=1024, seed=11, scale=0.1, ops_per_device=400)
        fast = run_fleet(spec, jobs=2, fast=True)
        ref = run_fleet(spec, jobs=2)
        assert fast.ok and ref.ok
        problems = compare_summaries(ref.summary, fast.summary)
        assert not problems, "\n".join(problems)

    def test_exact_fields_flagged(self):
        spec = FleetSpec(devices=16, seed=2, scale=0.1, ops_per_device=150)
        run = run_fleet(spec, jobs=1, fast=True)
        tampered = json.loads(canonical_json(run.summary))
        tampered["population"]["total_ops"] += 1
        problems = compare_summaries(run.summary, tampered)
        assert any("total_ops" in p for p in problems)

    def test_tolerances_cover_all_metrics(self):
        assert set(TOLERANCES) == set(METRIC_FIELDS)


# -- golden fixture ------------------------------------------------------------


class TestGolden:
    def test_fast_12_device_fleet_matches_golden(self, update_golden):
        spec = FleetSpec(devices=12, seed=7, scale=0.1, ops_per_device=400)
        run = run_fleet(spec, jobs=1, shards=1, fast=True)
        assert run.ok
        document = canonical_json(run.summary)
        if update_golden:
            GOLDEN.write_text(document)
            return
        assert GOLDEN.exists(), (
            "no golden fixture; generate with --update-golden"
        )
        assert document == GOLDEN.read_text(), (
            "fast-path 12-device fleet diverged from its golden fixture; "
            "if intentional, regenerate with `PYTHONPATH=src python -m "
            "pytest tests/test_fleet_fast.py --update-golden`"
        )


# -- shard bounding / progress / metrics ---------------------------------------


class TestOps:
    def test_default_shards_bounds_shard_size(self):
        devices = 1_000_000
        for jobs in (1, 8):
            shards = default_shards(devices, jobs)
            largest = -(-devices // shards)
            assert largest <= MAX_SHARD_DEVICES
        # Small fleets keep the original policy.
        assert default_shards(1000, 1) == 1
        assert default_shards(1000, 4) == 8

    def test_fleet_progress_events_and_counter(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "m.jsonl"
        with RunManifest(path) as manifest:
            run = run_fleet(SPEC, jobs=1, shards=3, fast=True,
                            manifest=manifest, metrics=registry)
        assert run.ok
        assert run.devices_per_s > 0
        counter = registry.get("serve_fleet_devices_total")
        assert counter.value == SPEC.devices
        events = [json.loads(line) for line in path.read_text().splitlines()]
        progress = [e for e in events
                    if e.get("record") == "event"
                    and e.get("kind") == "fleet-progress"]
        assert len(progress) == 3
        assert progress[-1]["devices_done"] == SPEC.devices
        assert progress[-1]["devices_total"] == SPEC.devices
        assert progress[-1]["devices_per_s"] > 0

    def test_parse_request_accepts_fast(self):
        request = parse_request({"kind": "fleet", "devices": 10, "fast": True})
        assert request["fast"] is True
        request = parse_request({"kind": "fleet", "devices": 10})
        assert "fast" not in request
        with pytest.raises(ConfigurationError):
            parse_request({"kind": "fleet", "devices": 10, "fast": "yes"})
