"""Trace record types and the Trace container."""

import pytest

from repro.errors import TraceError
from repro.traces.record import BlockOp, Operation, TraceRecord
from repro.traces.trace import Trace
from repro.units import KB


class TestTraceRecord:
    def test_basic_construction(self):
        record = TraceRecord(time=1.5, op=Operation.READ, file_id=3, offset=512, size=1024)
        assert record.end_offset == 1536

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(time=-0.1, op=Operation.READ, file_id=0, size=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(time=0, op=Operation.READ, file_id=0, offset=-1, size=1)

    def test_zero_size_read_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(time=0, op=Operation.READ, file_id=0, size=0)

    def test_zero_size_write_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(time=0, op=Operation.WRITE, file_id=0, size=0)

    def test_delete_must_have_zero_size(self):
        with pytest.raises(TraceError):
            TraceRecord(time=0, op=Operation.DELETE, file_id=0, size=10)

    def test_delete_with_zero_size_ok(self):
        record = TraceRecord(time=0, op=Operation.DELETE, file_id=0)
        assert record.size == 0

    def test_records_are_immutable(self):
        record = TraceRecord(time=0, op=Operation.READ, file_id=0, size=1)
        with pytest.raises(AttributeError):
            record.size = 2


class TestBlockOp:
    def test_nblocks(self):
        op = BlockOp(time=0, op=Operation.READ, file_id=1, blocks=(5, 6, 7), size=3072)
        assert op.nblocks == 3

    def test_read_needs_blocks(self):
        with pytest.raises(TraceError):
            BlockOp(time=0, op=Operation.READ, file_id=1, blocks=(), size=0)

    def test_delete_may_have_no_blocks(self):
        op = BlockOp(time=0, op=Operation.DELETE, file_id=1)
        assert op.nblocks == 0


class TestTrace:
    def test_length_and_iteration(self, tiny_trace):
        assert len(tiny_trace) == 4
        assert [record.op for record in tiny_trace][0] is Operation.WRITE

    def test_indexing(self, tiny_trace):
        assert tiny_trace[1].op is Operation.READ

    def test_duration(self, tiny_trace):
        assert tiny_trace.duration == pytest.approx(0.3)

    def test_empty_trace_duration(self):
        assert Trace("empty", []).duration == 0.0

    def test_time_must_be_monotone(self):
        records = [
            TraceRecord(time=1.0, op=Operation.READ, file_id=0, size=1),
            TraceRecord(time=0.5, op=Operation.READ, file_id=0, size=1),
        ]
        with pytest.raises(TraceError):
            Trace("bad", records)

    def test_equal_times_allowed(self):
        records = [
            TraceRecord(time=1.0, op=Operation.READ, file_id=0, size=1),
            TraceRecord(time=1.0, op=Operation.READ, file_id=1, size=1),
        ]
        trace = Trace("ties", records)
        assert len(trace) == 2

    def test_block_size_must_be_positive(self):
        with pytest.raises(TraceError):
            Trace("bad", [], block_size=0)

    def test_file_ids(self, tiny_trace):
        assert tiny_trace.file_ids() == {1, 2}

    def test_distinct_bytes_counts_unique_blocks(self, tiny_trace):
        # file 1: blocks 0,1 (write 2 KB) re-read; file 2: block 0.
        assert tiny_trace.distinct_bytes() == 3 * KB

    def test_distinct_bytes_ignores_deletes(self):
        records = [
            TraceRecord(time=0, op=Operation.WRITE, file_id=1, size=1024),
            TraceRecord(time=1, op=Operation.DELETE, file_id=1),
        ]
        trace = Trace("d", records, block_size=KB)
        assert trace.distinct_bytes() == KB

    def test_operation_counts(self, tiny_trace):
        counts = tiny_trace.operation_counts()
        assert counts[Operation.READ] == 2
        assert counts[Operation.WRITE] == 2
        assert counts[Operation.DELETE] == 0

    def test_split_warm_sizes(self, tiny_trace):
        warm, rest = tiny_trace.split_warm(0.25)
        assert len(warm) == 1
        assert len(rest) == 3

    def test_split_warm_zero_fraction(self, tiny_trace):
        warm, rest = tiny_trace.split_warm(0.0)
        assert len(warm) == 0
        assert len(rest) == 4

    def test_split_warm_invalid_fraction(self, tiny_trace):
        with pytest.raises(TraceError):
            tiny_trace.split_warm(1.0)
