"""Flash disk emulator (SunDisk) model."""

import pytest

from repro.devices.flashdisk import FlashDisk
from repro.devices.specs import SDP5A_DATASHEET, SDP5_DATASHEET, SDP10_DATASHEET
from repro.errors import ConfigurationError
from repro.units import KB, MB, transfer_time


def make_sync(block=512):
    return FlashDisk(SDP5_DATASHEET, capacity_bytes=1 * MB, block_bytes=block)


def make_async(block=512):
    return FlashDisk(SDP5A_DATASHEET, capacity_bytes=1 * MB, block_bytes=block)


class TestTiming:
    def test_read_time(self):
        disk = make_sync()
        completion = disk.read(0.0, 4 * KB, [0, 1, 2, 3, 4, 5, 6, 7], 1)
        spec = SDP5_DATASHEET
        assert completion == pytest.approx(
            spec.access_latency_s + 4 * KB / spec.read_bandwidth_bps
        )

    def test_coupled_write_time(self):
        disk = make_sync()
        completion = disk.write(0.0, 4 * KB, list(range(8)), 1)
        spec = SDP5_DATASHEET
        assert completion == pytest.approx(
            spec.access_latency_s + 4 * KB / spec.write_bandwidth_bps
        )

    def test_pre_erased_write_is_faster(self):
        sync = make_sync()
        async_disk = make_async()
        blocks = list(range(8))
        sync_time = sync.write(0.0, 4 * KB, blocks, 1)
        async_time = async_disk.write(0.0, 4 * KB, blocks, 1)
        assert async_time < sync_time / 2

    def test_no_seek_concept_on_flash(self):
        """Responses are file-identity independent (no mechanical seek)."""
        disk = make_sync()
        first = disk.read(0.0, KB, [0, 1], 1)
        second = disk.read(first, KB, [100, 101], 99)
        assert (second - first) == pytest.approx(first)


class TestAsyncErasure:
    def test_overwrite_queues_dirty_sectors(self):
        disk = make_async()
        disk.preload(8)
        disk.write(0.0, 4 * KB, list(range(8)), 1)
        assert disk.sector_map.dirty_sectors == 8

    def test_background_erase_drains_dirty(self):
        disk = make_async()
        disk.preload(8)
        completion = disk.write(0.0, 4 * KB, list(range(8)), 1)
        disk.advance(completion + 60.0)
        assert disk.sector_map.dirty_sectors == 0
        assert disk.background_erasures == 8

    def test_erase_takes_time_at_erase_bandwidth(self):
        disk = make_async()
        disk.preload(8)
        completion = disk.write(0.0, 4 * KB, list(range(8)), 1)
        per_sector = transfer_time(512, SDP5A_DATASHEET.erase_bandwidth_bps)
        # Advance less than one sector's erase time: nothing recycled yet.
        disk.advance(completion + per_sector * 0.5)
        assert disk.background_erasures == 0
        disk.advance(completion + per_sector * 8 + 1e-6)
        assert disk.background_erasures == 8

    def test_coupled_fallback_when_pool_exhausted(self):
        spec = SDP5A_DATASHEET
        disk = FlashDisk(spec, capacity_bytes=16 * KB, block_bytes=512)
        disk.preload(32)  # the whole device is live: free pool empty
        disk.write(0.0, 4 * KB, list(range(8)), 1)
        assert disk.coupled_sector_writes == 8
        assert disk.pre_erased_sector_writes == 0

    def test_energy_charged_for_background_erase(self):
        disk = make_async()
        disk.preload(8)
        completion = disk.write(0.0, 4 * KB, list(range(8)), 1)
        disk.advance(completion + 60.0)
        assert disk.energy.breakdown().get("erase", 0.0) > 0.0

    def test_sync_mode_never_background_erases(self):
        disk = make_sync()
        disk.preload(8)
        completion = disk.write(0.0, 4 * KB, list(range(8)), 1)
        disk.advance(completion + 60.0)
        assert disk.background_erasures == 0


class TestTrim:
    def test_delete_queues_sectors_for_erase(self):
        disk = make_async()
        disk.preload(8)
        disk.delete(0.0, list(range(8)))
        assert disk.sector_map.dirty_sectors == 8

    def test_delete_unknown_blocks_is_noop(self):
        disk = make_async()
        disk.delete(0.0, [100, 101])
        assert disk.sector_map.dirty_sectors == 0


class TestConfiguration:
    def test_block_must_be_sector_multiple(self):
        with pytest.raises(ConfigurationError):
            FlashDisk(SDP5_DATASHEET, block_bytes=700)

    def test_1kb_blocks_map_to_two_sectors(self):
        disk = FlashDisk(SDP5A_DATASHEET, capacity_bytes=1 * MB, block_bytes=1024)
        disk.preload(4)
        assert disk.sector_map.mapped_sectors == 8

    def test_idle_energy(self):
        disk = make_sync()
        disk.advance(100.0)
        assert disk.energy.total_j == pytest.approx(
            100.0 * SDP5_DATASHEET.idle_power_w
        )

    def test_spec_capability_sets_default_mode(self):
        assert not FlashDisk(SDP10_DATASHEET).async_erase
        assert FlashDisk(SDP5A_DATASHEET).async_erase

    def test_stats_exposed(self):
        disk = make_async()
        disk.preload(4)
        disk.write(0.0, KB, [0, 1], 1)
        stats = disk.stats()
        assert stats["pre_erased_sector_writes"] == 2
        assert "dirty_sectors" in stats
