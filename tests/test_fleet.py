"""Fleet populations: deterministic sampling, exact aggregation, engine
integration, and the ``repro fleet`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.engine import ResultCache, resolve_jobs
from repro.errors import ConfigurationError
from repro.fleet import (
    FleetSpec,
    aggregate_rows,
    canonical_json,
    decompose_fleet,
    default_shards,
    device_seed,
    exact_quantile,
    population_summary,
    rows_from_result,
    run_fleet,
    sample_device,
    sample_devices,
    simulate_device,
)
from repro.fleet.experiment import run as run_shard, shard_indices

#: Small-but-heterogeneous settings all integration tests share.
SPEC = FleetSpec(devices=16, seed=11, scale=0.1, ops_per_device=150)


# -- sampling determinism --------------------------------------------------


class TestSampling:
    def test_device_seed_is_stable_and_distinct(self):
        assert device_seed(1, 0) == device_seed(1, 0)
        assert device_seed(1, 0) != device_seed(1, 1)
        assert device_seed(1, 0) != device_seed(2, 0)

    def test_sample_independent_of_neighbours(self):
        # Device 7 is the same device whether sampled alone or in bulk.
        alone = sample_device(SPEC, 7)
        in_bulk = sample_devices(SPEC)[7]
        assert alone == in_bulk

    def test_population_is_heterogeneous(self):
        # ops large enough that the ±50% jitter clears the MIN_DEVICE_OPS
        # floor (tiny fleets clamp every trace to the floor by design).
        spec = FleetSpec(devices=64, seed=3, scale=0.1, ops_per_device=2000)
        samples = sample_devices(spec)
        assert len({s.workload for s in samples}) >= 2
        assert len({s.device for s in samples}) >= 3
        assert len({s.n_ops for s in samples}) > 8

    def test_hp_devices_have_no_dram(self):
        spec = FleetSpec(devices=64, seed=3, scale=0.1, ops_per_device=150)
        for sample in sample_devices(spec):
            if sample.workload == "hp":
                assert sample.dram_bytes == 0

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(devices=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(scale=0.0)
        with pytest.raises(ConfigurationError):
            sample_device(SPEC, SPEC.devices)

    def test_simulate_device_row_shape(self):
        row = simulate_device(sample_device(SPEC, 0))
        assert row["device"] == 0
        assert row["energy_j"] > 0
        assert row["ops"] >= 1


# -- exact quantiles / aggregation -----------------------------------------


class TestAggregate:
    def test_exact_quantile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 1.0) == 4.0
        assert exact_quantile(values, 0.5) == 2.5
        with pytest.raises(ConfigurationError):
            exact_quantile([], 0.5)

    def test_aggregate_rejects_duplicate_devices(self):
        row = simulate_device(sample_device(SPEC, 0))
        with pytest.raises(ConfigurationError):
            aggregate_rows([row, dict(row)])

    def test_population_summary_requires_complete_fleet(self):
        rows = [simulate_device(s) for s in sample_devices(SPEC, range(3))]
        with pytest.raises(ConfigurationError):
            population_summary(SPEC, rows)

    def test_aggregation_is_shard_order_independent(self):
        rows = [simulate_device(s) for s in sample_devices(SPEC)]
        forward = population_summary(SPEC, rows)
        backward = population_summary(SPEC, list(reversed(rows)))
        assert canonical_json(forward) == canonical_json(backward)

    def test_wear_only_counts_flash_cards(self):
        rows = [simulate_device(s) for s in sample_devices(SPEC)]
        summary = aggregate_rows(rows)
        wear = summary["metrics"]["wear_max"]
        flash_cards = summary["device_specs"].get("intel-datasheet", 0)
        assert wear["count"] == flash_cards


# -- sharding --------------------------------------------------------------


class TestSharding:
    def test_shard_indices_partition_the_fleet(self):
        covered = []
        for shard in range(5):
            covered.extend(shard_indices(16, shard, 5))
        assert covered == list(range(16))

    def test_decompose_clamps_shards_to_devices(self):
        units = decompose_fleet(FleetSpec(devices=3, seed=1), shards=10)
        assert len(units) == 3

    def test_default_shards(self):
        assert default_shards(1000, 1) == 1
        assert default_shards(1000, 4) == 8
        assert default_shards(3, 4) == 3

    def test_shard_driver_rows_round_trip(self):
        result = run_shard(scale=SPEC.scale, seed=SPEC.seed,
                           devices=SPEC.devices, shard=1, shards=4,
                           ops=SPEC.ops_per_device)
        rows = rows_from_result(result)
        indices = shard_indices(SPEC.devices, 1, 4)
        assert [row["device"] for row in rows] == list(indices)


# -- end-to-end determinism ------------------------------------------------


class TestRunFleet:
    def test_byte_identical_across_shard_counts(self):
        one = run_fleet(SPEC, jobs=1, shards=1)
        many = run_fleet(SPEC, jobs=1, shards=5)
        assert one.ok and many.ok
        assert canonical_json(one.summary) == canonical_json(many.summary)

    def test_byte_identical_through_cache_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_fleet(SPEC, jobs=1, shards=3, cache=cache)
        replay = run_fleet(SPEC, jobs=1, shards=3, cache=cache)
        assert [o.cache for o in replay.outcomes] == ["hit"] * 3
        assert canonical_json(first.summary) == canonical_json(replay.summary)

    def test_summary_counts_whole_fleet(self):
        run = run_fleet(SPEC, jobs=1, shards=4)
        population = run.summary["population"]
        assert population["devices"] == SPEC.devices
        assert sum(population["workloads"].values()) == SPEC.devices
        metrics = population["metrics"]["energy_j"]
        assert metrics["count"] == SPEC.devices
        assert metrics["p50"] <= metrics["p90"] <= metrics["p99"]

    def test_jobs_auto_resolves(self):
        run = run_fleet(SPEC, jobs="auto", shards=1)
        assert run.jobs == resolve_jobs("auto")
        assert run.ok


# -- CLI -------------------------------------------------------------------


class TestFleetCli:
    def test_json_output_is_canonical(self, tmp_path, capsys):
        out = tmp_path / "pop.json"
        code = main([
            "fleet", "--devices", "8", "--seed", "2", "--scale", "0.1",
            "--ops", "120", "--jobs", "1", "--no-cache", "--quiet",
            "--json", "--out", str(out),
            "--manifest", str(tmp_path / "m.jsonl"),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert stdout == out.read_text()
        summary = json.loads(stdout)
        assert summary["fleet"]["devices"] == 8
        assert summary["population"]["devices"] == 8

    def test_table_output(self, tmp_path, capsys):
        code = main([
            "fleet", "--devices", "6", "--seed", "2", "--scale", "0.1",
            "--ops", "120", "--jobs", "1", "--no-cache", "--quiet",
            "--manifest", str(tmp_path / "m.jsonl"),
        ])
        assert code == 0
        assert "Fleet population" in capsys.readouterr().out
