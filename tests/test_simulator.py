"""End-to-end simulator behaviour."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator, simulate
from repro.errors import ConfigurationError, TraceError
from repro.traces.trace import Trace
from repro.units import KB


def test_runs_tiny_trace(tiny_trace):
    result = simulate(tiny_trace, SimulationConfig(warm_fraction=0.0))
    assert result.n_reads == 2
    assert result.n_writes == 2
    assert result.energy_j > 0


def test_result_carries_config_and_names(tiny_trace):
    config = SimulationConfig(device="sdp5-datasheet", warm_fraction=0.0)
    result = simulate(tiny_trace, config)
    assert result.trace_name == "tiny"
    assert result.device_name == "sdp5-datasheet"
    assert result.config is config


def test_warm_fraction_excludes_prefix(small_synth_trace):
    full = simulate(small_synth_trace, SimulationConfig(
        device="sdp5-datasheet", warm_fraction=0.0))
    measured = simulate(small_synth_trace, SimulationConfig(
        device="sdp5-datasheet", warm_fraction=0.5))
    assert measured.n_reads < full.n_reads
    assert measured.energy_j < full.energy_j


def test_deletes_counted(small_synth_trace):
    result = simulate(small_synth_trace, SimulationConfig(
        device="sdp5-datasheet", warm_fraction=0.0))
    assert result.n_deletes > 0


def test_duration_covers_trace(small_synth_trace):
    result = simulate(small_synth_trace, SimulationConfig(warm_fraction=0.0))
    assert result.duration_s >= small_synth_trace.duration * 0.99


def test_wear_present_only_for_flash_card(tiny_trace):
    disk = simulate(tiny_trace, SimulationConfig(warm_fraction=0.0))
    card = simulate(tiny_trace, SimulationConfig(
        device="intel-datasheet", warm_fraction=0.0))
    assert disk.wear is None
    assert card.wear is not None


def test_dram_hit_rate_reported(small_synth_trace):
    result = simulate(small_synth_trace, SimulationConfig(warm_fraction=0.0))
    assert result.dram_hit_rate is not None
    assert 0.0 <= result.dram_hit_rate <= 1.0


def test_zero_dram_reports_no_hit_rate(tiny_trace):
    result = simulate(tiny_trace, SimulationConfig(
        dram_bytes=0, warm_fraction=0.0))
    assert result.dram_hit_rate is None


def test_table4_row_shape(tiny_trace):
    row = simulate(tiny_trace, SimulationConfig(warm_fraction=0.0)).table4_row()
    for key in ("device", "energy_j", "read_mean_ms", "write_max_ms"):
        assert key in row


def test_energy_of_component(small_synth_trace):
    result = simulate(small_synth_trace, SimulationConfig(warm_fraction=0.0))
    assert result.energy_of("device") > 0
    assert result.energy_of("nonexistent") == 0.0


def test_empty_trace_rejected():
    with pytest.raises(TraceError, match="no block operations"):
        simulate(Trace("empty", [], block_size=KB), SimulationConfig())


def test_empty_trace_rejected_before_building_accounting():
    # Regression: the old behaviour silently returned an all-zero result,
    # which downstream analysis divided by — the error must name the trace.
    with pytest.raises(TraceError, match="oops"):
        simulate(Trace("oops", [], block_size=KB), SimulationConfig())


def test_deterministic(small_synth_trace):
    config = SimulationConfig(device="intel-datasheet")
    a = simulate(small_synth_trace, config)
    b = simulate(small_synth_trace, config)
    assert a.energy_j == b.energy_j
    assert a.read_response.mean_s == b.read_response.mean_s


def test_simulator_reusable(tiny_trace, small_synth_trace):
    simulator = Simulator(SimulationConfig(warm_fraction=0.0))
    first = simulator.run(tiny_trace)
    second = simulator.run(tiny_trace)
    assert first.energy_j == pytest.approx(second.energy_j)


def test_unknown_device_fails_fast(tiny_trace):
    with pytest.raises(ConfigurationError):
        simulate(tiny_trace, SimulationConfig(device="pdp11"))


def test_responses_are_positive(small_synth_trace):
    for device in ("cu140-datasheet", "sdp5-datasheet", "intel-datasheet"):
        result = simulate(small_synth_trace, SimulationConfig(device=device))
        assert result.read_response.mean_s > 0
        assert result.write_response.mean_s > 0
        assert result.read_response.max_s >= result.read_response.mean_s
        assert result.write_response.max_s >= result.write_response.mean_s


def test_overall_combines_reads_and_writes(small_synth_trace):
    result = simulate(small_synth_trace, SimulationConfig(warm_fraction=0.0))
    assert result.overall_response.count == result.n_reads + result.n_writes
