"""ObservabilitySession end-to-end: agreement, neutrality, lifecycle.

The two contracts that make the observability layer trustworthy:

* **Agreement** — the per-layer latency slices a traced run records sum
  to the latency column of ``SimulationResult.layer_breakdown`` exactly
  (same floats, same fold order: bit-for-bit, not within-epsilon);
* **Neutrality** — attaching a session never changes simulation results
  (hex-exact against an unobserved run), and with no session attached the
  fast path's golden fixtures are untouched by construction.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.obs import ObservabilitySession, read_chrome_layer_totals
from repro.obs import runtime as obs_runtime
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import workload_by_name
from tests.golden.generate_equivalence_golden import DEVICES, WORKLOADS, hexify


def _trace(workload: str, n_ops: int, seed: int):
    if workload == "synth":
        return SyntheticWorkload().generate(n_ops=n_ops, seed=seed)
    return workload_by_name(workload).generate(seed=seed, n_ops=n_ops)


def _hex_result(result) -> dict:
    return {
        "duration_s": hexify(result.duration_s),
        "energy_j": hexify(result.energy_j),
        "energy_breakdown": hexify(result.energy_breakdown),
        "overall_mean_s": hexify(result.overall_response.mean_s),
        "device_stats": hexify(result.device_stats),
        "layer_breakdown": hexify(result.layer_breakdown),
    }


@pytest.mark.parametrize("device", DEVICES)
def test_traced_layer_sums_equal_breakdown_bitwise(device):
    """Session sums == report latency column, exact float equality."""
    trace = _trace("mac", n_ops=1000, seed=7)
    session = ObservabilitySession()
    result = simulate(trace, SimulationConfig(device=device), obs=session)
    reported = {
        name: parts["latency_s"]
        for name, parts in result.layer_breakdown.items()
        if parts["latency_s"] != 0.0
    }
    recorded = {
        name: value
        for name, value in session.layer_latency_s().items()
        if value != 0.0
    }
    assert {k: v.hex() for k, v in recorded.items()} == \
        {k: v.hex() for k, v in reported.items()}
    assert session.runs[-1]["agreement_max_abs_diff"] == 0.0


@settings(max_examples=10, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    device=st.sampled_from(DEVICES),
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=50, max_value=400),
    batched=st.booleans(),
)
def test_traced_events_sum_to_breakdown_property(
    workload, device, seed, n_ops, batched
):
    """No corner of the space may separate trace events from the report.

    Checked at the event level: re-summing the buffered layer events (the
    tracer's own fold, independent of the session's accumulator) must
    reproduce the breakdown exactly on both request paths.
    """
    trace = _trace(workload, n_ops=n_ops, seed=seed)
    session = ObservabilitySession()
    result = simulate(
        trace, SimulationConfig(device=device), batched=batched, obs=session
    )
    from_events = session.tracer.layer_latency_totals(
        since_run=session.runs[-1]["run"]
    )
    reported = {
        name: parts["latency_s"]
        for name, parts in result.layer_breakdown.items()
    }
    for name, value in from_events.items():
        assert value.hex() == reported[name].hex(), (workload, device, name)
    for name, value in reported.items():
        if value != 0.0:
            assert name in from_events


@pytest.mark.parametrize("device", DEVICES)
def test_observation_is_bit_neutral(device):
    """A session on the hook bus never changes the simulation."""
    trace = _trace("synth", n_ops=800, seed=11)
    config = SimulationConfig(device=device)
    plain = _hex_result(simulate(trace, config))
    observed = _hex_result(
        simulate(trace, config, obs=ObservabilitySession())
    )
    assert plain == observed


def test_ring_bound_holds_under_a_real_run():
    trace = _trace("mac", n_ops=2000, seed=5)
    session = ObservabilitySession(trace_capacity=512)
    simulate(trace, SimulationConfig(device="cu140-datasheet"), obs=session)
    tracer = session.tracer
    assert len(tracer) <= 512
    assert tracer.dropped > 0
    # emitted rewinds at the warm boundary (rollback), so it is not
    # len + dropped; it still bounds the buffer from above.
    assert len(tracer) <= tracer.emitted


def test_multi_run_chrome_export_agrees_per_run(tmp_path):
    """Several runs through one session -> one pid per run, exact totals."""
    session = ObservabilitySession()
    expected = []
    for device in DEVICES:
        trace = _trace("mac", n_ops=500, seed=9)
        result = simulate(trace, SimulationConfig(device=device), obs=session)
        expected.append({
            name: parts["latency_s"]
            for name, parts in result.layer_breakdown.items()
            if parts["latency_s"] != 0.0
        })
    path = session.tracer.write_chrome(tmp_path / "t.json")
    json.loads(path.read_text())  # valid JSON end to end
    per_run = read_chrome_layer_totals(path)
    assert len(per_run) == len(DEVICES)
    for actual, wanted in zip(per_run, expected):
        # Layers that never charged latency (e.g. a cleaning episode with
        # only energy) sum to exactly 0.0 in the trace; drop them to
        # compare against the non-zero breakdown column.
        nonzero = {k: v.hex() for k, v in actual.items() if v != 0.0}
        assert nonzero == {k: v.hex() for k, v in wanted.items()}


def test_session_counts_requests_and_device_episodes():
    trace = _trace("synth", n_ops=1500, seed=3)
    session = ObservabilitySession()
    result = simulate(
        trace, SimulationConfig(device="intel-datasheet"), obs=session
    )
    registry = session.registry
    assert registry.get("ops_total").sample() == (
        result.overall_response.count + result.n_deletes
    )
    assert registry.get("reads_total").sample() == result.n_reads
    assert registry.get("writes_total").sample() == result.n_writes
    assert registry.get("response_time_s").sample()["count"] == (
        result.n_reads + result.n_writes
    )
    # The flash card cleaned at least once on this workload; the stall
    # episodes flow through the device sink into both tracer and counter.
    stalls = registry.get("cleaning_stalls_total").sample()
    assert stalls == session.tracer.counts().get("cleaning", 0)
    # Wear histogram filled from the card's segments at end_run.
    wear = registry.get("segment_wear_erases").sample()
    assert wear["count"] > 0


def test_session_refuses_overlapping_runs(tiny_trace):
    session = ObservabilitySession()
    simulate(tiny_trace, SimulationConfig(device="cu140-datasheet"),
             obs=session)
    # end_run detached: a fresh run is fine, an unmatched end is not.
    with pytest.raises(RuntimeError):
        session.end_run()


def test_runtime_install_routes_plain_simulate_calls():
    """The process-global session observes simulate() with no obs kwarg."""
    trace = _trace("synth", n_ops=300, seed=2)
    config = SimulationConfig(device="sdp5a-datasheet")
    session = ObservabilitySession()
    with obs_runtime.observed(session):
        assert obs_runtime.active() is session
        simulate(trace, config)
    assert obs_runtime.active() is None
    assert len(session.runs) == 1
    assert session.runs[0]["agreement_max_abs_diff"] == 0.0


def test_crash_events_recorded_under_faults():
    from repro.faults.plan import FaultPlan

    trace = _trace("synth", n_ops=800, seed=4)
    plan = FaultPlan(seed=4, power_loss_times=(0.5 * trace.duration,))
    session = ObservabilitySession()
    simulate(
        trace,
        SimulationConfig(device="intel-datasheet", fault_plan=plan),
        obs=session,
    )
    assert session.tracer.counts().get("crash", 0) == 1
    assert session.registry.get("crashes_total").sample() == 1.0
