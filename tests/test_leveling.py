"""Wear-leveling policies and the imbalance metric."""

import pytest

from repro.errors import ConfigurationError
from repro.flash.cleaner import GreedyPolicy, cleaning_policy
from repro.flash.leveling import ColdSwapLeveler, WearAwarePolicy, wear_imbalance
from repro.flash.segment import Segment


def segment_with(index, live, dead, capacity=8, erases=0):
    segment = Segment(index, capacity)
    logical = index * 100
    for _ in range(live):
        segment.allocate(logical, 0.0)
        logical += 1
    for _ in range(dead):
        segment.allocate(logical, 0.0)
        segment.invalidate(logical)
        logical += 1
    segment.erase_count = erases
    return segment


class TestWearAwarePolicy:
    def test_ties_broken_toward_fewer_erases(self):
        segments = [
            segment_with(0, live=2, dead=6, erases=10),
            segment_with(1, live=2, dead=6, erases=1),
        ]
        victim = WearAwarePolicy().choose_victim(segments, (), 0.0)
        assert victim.index == 1

    def test_tolerance_band_respected(self):
        # Base greedy picks live=1; the live=3 segment with fewer erases is
        # within a 4-block band and wins; live=7 is not.
        segments = [
            segment_with(0, live=1, dead=7, erases=9),
            segment_with(1, live=3, dead=5, erases=0),
            segment_with(2, live=7, dead=1, erases=0),
        ]
        victim = WearAwarePolicy(tolerance_blocks=4).choose_victim(segments, (), 0.0)
        assert victim.index == 1

    def test_zero_tolerance_matches_base(self):
        segments = [
            segment_with(0, live=1, dead=7, erases=9),
            segment_with(1, live=3, dead=5, erases=0),
        ]
        strict = WearAwarePolicy(tolerance_blocks=0)
        base = GreedyPolicy()
        assert (
            strict.choose_victim(segments, (), 0.0).index
            == base.choose_victim(segments, (), 0.0).index
        )

    def test_none_when_nothing_cleanable(self):
        assert WearAwarePolicy().choose_victim([], (), 0.0) is None

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            WearAwarePolicy(tolerance_blocks=-1)


class TestColdSwapLeveler:
    def test_defers_to_base_when_balanced(self):
        segments = [
            segment_with(0, live=1, dead=7, erases=2),
            segment_with(1, live=6, dead=2, erases=3),
        ]
        leveler = ColdSwapLeveler(gap_threshold=8)
        victim = leveler.choose_victim(segments, (), 0.0)
        assert victim.index == 0  # greedy choice
        assert leveler.forced_swaps == 0

    def test_forces_cold_victim_when_gap_exceeds_threshold(self):
        segments = [
            segment_with(0, live=1, dead=7, erases=30),
            segment_with(1, live=6, dead=2, erases=0),  # cold, barely erased
        ]
        leveler = ColdSwapLeveler(gap_threshold=8)
        victim = leveler.choose_victim(segments, (), 0.0)
        assert victim.index == 1
        assert leveler.forced_swaps == 1

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            ColdSwapLeveler(gap_threshold=0)


class TestImbalanceMetric:
    def test_perfectly_level(self):
        segments = [segment_with(i, 0, 0, erases=5) for i in range(4)]
        assert wear_imbalance(segments) == 0.0

    def test_skewed(self):
        segments = [
            segment_with(0, 0, 0, erases=0),
            segment_with(1, 0, 0, erases=10),
        ]
        assert wear_imbalance(segments) == pytest.approx(10 / 6)

    def test_empty(self):
        assert wear_imbalance([]) == 0.0


class TestIntegration:
    def test_policies_available_by_name(self):
        assert isinstance(cleaning_policy("wear-aware"), WearAwarePolicy)
        assert isinstance(cleaning_policy("cold-swap"), ColdSwapLeveler)

    def test_cold_swap_levels_wear_on_the_card(self):
        """End-to-end: leveling narrows the erase-count spread."""
        from repro.core.config import SimulationConfig
        from repro.core.simulator import simulate
        from repro.traces.synthetic import SyntheticWorkload

        trace = SyntheticWorkload().generate(n_ops=4000, seed=3)
        results = {}
        for policy in ("greedy", "cold-swap"):
            config = SimulationConfig(
                device="intel-datasheet",
                flash_utilization=0.9,
                cleaning_policy=policy,
                segment_bytes=32 * 1024,
            )
            results[policy] = simulate(trace, config)
        greedy_spread = (
            results["greedy"].wear.max_erasures
            - results["greedy"].wear.mean_erasures
        )
        level_spread = (
            results["cold-swap"].wear.max_erasures
            - results["cold-swap"].wear.mean_erasures
        )
        assert level_spread <= greedy_spread
