"""FlashCache hybrid device (extension X1)."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.devices.disk import MagneticDisk
from repro.devices.flashcache import FlashCacheDevice
from repro.devices.flashcard import FlashCard
from repro.devices.specs import CU140_DATASHEET, INTEL_DATASHEET
from repro.devices.spindown import FixedTimeoutPolicy
from repro.errors import ConfigurationError
from repro.traces.synthetic import SyntheticWorkload
from repro.units import KB, MB


def make_hybrid(cache_mb=2, watermark=None):
    disk = MagneticDisk(CU140_DATASHEET, FixedTimeoutPolicy(5.0))
    flash = FlashCard(
        INTEL_DATASHEET, capacity_bytes=cache_mb * MB, block_bytes=1024
    )
    return FlashCacheDevice(disk, flash, dirty_watermark_blocks=watermark)


class TestBasics:
    def test_first_read_misses_to_disk(self):
        hybrid = make_hybrid()
        hybrid.read(0.0, KB, [1], 1)
        assert hybrid.flash_read_misses == 1
        assert hybrid.disk.reads == 1

    def test_second_read_hits_flash(self):
        hybrid = make_hybrid()
        first = hybrid.read(0.0, KB, [1], 1)
        hybrid.read(first + 1.0, KB, [1], 1)
        assert hybrid.flash_read_hits == 1
        assert hybrid.disk.reads == 1  # no second disk access

    def test_write_does_not_touch_disk(self):
        hybrid = make_hybrid()
        hybrid.write(0.0, KB, [1], 1)
        assert hybrid.disk.writes == 0
        assert hybrid.dirty_blocks == 1

    def test_write_then_read_served_from_flash(self):
        hybrid = make_hybrid()
        completion = hybrid.write(0.0, KB, [1], 1)
        hybrid.read(completion + 0.1, KB, [1], 1)
        assert hybrid.disk.reads == 0

    def test_read_miss_triggers_dirty_writeback(self):
        hybrid = make_hybrid()
        completion = hybrid.write(0.0, KB, [1], 1)
        hybrid.read(completion + 0.1, KB, [99], 1)  # wakes the disk
        assert hybrid.dirty_blocks == 0
        assert hybrid.disk.writes == 1

    def test_watermark_forces_flush(self):
        hybrid = make_hybrid(watermark=4)
        clock = 0.0
        for block in range(8):
            clock = hybrid.write(clock, KB, [block], 1)
        assert hybrid.disk_flushes >= 1
        assert hybrid.dirty_blocks <= 4

    def test_delete_clears_both_levels(self):
        hybrid = make_hybrid()
        hybrid.write(0.0, KB, [1], 1)
        hybrid.delete(1.0, [1])
        assert hybrid.dirty_blocks == 0
        assert hybrid.flash.live_blocks == 0

    def test_finalize_writes_back_dirty(self):
        hybrid = make_hybrid()
        hybrid.write(0.0, KB, [1], 1)
        hybrid.finalize(100.0)
        assert hybrid.dirty_blocks == 0
        assert hybrid.disk.writes == 1

    def test_invalid_watermark(self):
        with pytest.raises(ConfigurationError):
            make_hybrid(watermark=0)


class TestCacheManagement:
    def test_capacity_bounded(self):
        hybrid = make_hybrid(cache_mb=1)
        clock = 0.0
        for block in range(3000):
            clock = hybrid.read(clock, KB, [block], 1)
            clock += 1.0
        assert len(hybrid._resident) <= hybrid.cache_capacity_blocks
        hybrid.flash.check_invariants()

    def test_clean_evictions_invalidate_flash_blocks(self):
        hybrid = make_hybrid(cache_mb=1)
        clock = 0.0
        for block in range(2000):
            clock = hybrid.read(clock, KB, [block], 1) + 1.0
        # Evictions marked dead on the card keep its cleaner solvent.
        assert hybrid.flash.live_blocks <= hybrid.cache_capacity_blocks + 1

    def test_energy_merges_both_devices(self):
        hybrid = make_hybrid()
        hybrid.read(0.0, KB, [1], 1)
        hybrid.advance(100.0)
        breakdown = hybrid.energy.breakdown()
        assert any(key.startswith("disk:") for key in breakdown)
        assert any(key.startswith("flash:") for key in breakdown)
        assert hybrid.energy.total_j == pytest.approx(
            hybrid.disk.energy.total_j + hybrid.flash.energy.total_j
        )

    def test_reset_accounting_resets_children(self):
        hybrid = make_hybrid()
        hybrid.read(0.0, KB, [1], 1)
        hybrid.reset_accounting()
        assert hybrid.energy.total_j == 0.0
        assert hybrid.flash_read_misses == 0

    def test_wear_reports_flash(self):
        hybrid = make_hybrid()
        assert hybrid.wear(3600.0).segments == len(hybrid.flash.segments)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def synth_results(self):
        trace = SyntheticWorkload().generate(n_ops=3000, seed=2)
        plain = simulate(trace, SimulationConfig(
            device="cu140-datasheet", dram_bytes=0))
        hybrid = simulate(trace, SimulationConfig(
            device="cu140-datasheet", dram_bytes=0,
            flash_cache_bytes=8 * MB))
        return plain, hybrid

    def test_hybrid_saves_energy_on_reuse_heavy_workload(self, synth_results):
        plain, hybrid = synth_results
        assert hybrid.energy_j < plain.energy_j * 0.9

    def test_hybrid_writes_never_wait_for_the_spindle(self, synth_results):
        plain, hybrid = synth_results
        # Both configurations front writes with SRAM, so means are close;
        # the hybrid's advantage is the tail: its flushes land on flash,
        # never on a spinning-up disk.
        assert hybrid.write_response.max_s < 1.0
        assert hybrid.write_response.mean_s < 0.005

    def test_responses_non_negative(self, synth_results):
        _, hybrid = synth_results
        assert hybrid.read_response.mean_s >= 0.0
        assert hybrid.write_response.mean_s >= 0.0

    def test_high_flash_hit_rate(self, synth_results):
        _, hybrid = synth_results
        stats = hybrid.device_stats
        hits, misses = stats["flash_read_hits"], stats["flash_read_misses"]
        assert hits / (hits + misses) > 0.8

    def test_experiment_driver_runs(self):
        from repro.experiments import run_experiment

        result = run_experiment("flashcache", scale=0.05)
        table = result.tables[0]
        assert len(table.rows) == 6  # 2 traces x 3 cache sizes
