"""Cleaning-policy victim selection."""

import pytest

from repro.errors import ConfigurationError
from repro.flash.cleaner import (
    CostBenefitPolicy,
    EnvyHybridPolicy,
    GreedyPolicy,
    cleaning_policy,
)
from repro.flash.segment import Segment


def build_segments(live_counts, capacity=32, ages=None):
    segments = []
    for index, live in enumerate(live_counts):
        segment = Segment(index, capacity)
        for logical in range(live):
            segment.allocate(index * 1000 + logical, 0.0)
        # Fill the rest with dead blocks so nothing is erased-clean.
        for logical in range(live, capacity):
            segment.allocate(index * 1000 + logical, 0.0)
            segment.invalidate(index * 1000 + logical)
        if ages is not None:
            segment.last_write_time = ages[index]
        segments.append(segment)
    return segments


class TestGreedy:
    def test_picks_lowest_live(self):
        segments = build_segments([10, 3, 20])
        victim = GreedyPolicy().choose_victim(segments, exclude=(), now=0.0)
        assert victim.index == 1

    def test_respects_exclusions(self):
        segments = build_segments([10, 3, 20])
        victim = GreedyPolicy().choose_victim(segments, exclude=(1,), now=0.0)
        assert victim.index == 0

    def test_skips_erased_segments(self):
        segments = build_segments([10, 5])
        segments.append(Segment(2, 32))  # erased
        victim = GreedyPolicy().choose_victim(segments, exclude=(), now=0.0)
        assert victim.index == 1

    def test_skips_fully_live_segments(self):
        full = Segment(0, 4)
        for logical in range(4):
            full.allocate(logical, 0.0)
        assert GreedyPolicy().choose_victim([full], exclude=(), now=0.0) is None

    def test_none_when_nothing_cleanable(self):
        assert GreedyPolicy().choose_victim([], exclude=(), now=0.0) is None

    def test_tie_broken_by_index(self):
        segments = build_segments([5, 5])
        victim = GreedyPolicy().choose_victim(segments, exclude=(), now=0.0)
        assert victim.index == 0


class TestCostBenefit:
    def test_prefers_old_segment_at_equal_utilization(self):
        segments = build_segments([10, 10], ages=[100.0, 0.0])
        victim = CostBenefitPolicy().choose_victim(segments, exclude=(), now=200.0)
        assert victim.index == 1  # last_write older => larger age

    def test_age_can_beat_slightly_lower_utilization(self):
        # A much older segment with slightly more live data wins.
        segments = build_segments([12, 10], ages=[0.0, 199.0])
        victim = CostBenefitPolicy().choose_victim(segments, exclude=(), now=200.0)
        assert victim.index == 0

    def test_utilization_dominates_at_equal_age(self):
        segments = build_segments([20, 5], ages=[50.0, 50.0])
        victim = CostBenefitPolicy().choose_victim(segments, exclude=(), now=100.0)
        assert victim.index == 1


class TestEnvyHybrid:
    def test_zero_locality_weight_acts_greedy(self):
        segments = build_segments([10, 3], ages=[0.0, 100.0])
        policy = EnvyHybridPolicy(locality_weight=0.0)
        victim = policy.choose_victim(segments, exclude=(), now=100.0)
        assert victim.index == 1

    def test_full_locality_weight_acts_by_age(self):
        segments = build_segments([3, 10], ages=[100.0, 0.0])
        policy = EnvyHybridPolicy(locality_weight=1.0)
        victim = policy.choose_victim(segments, exclude=(), now=100.0)
        assert victim.index == 1  # oldest, despite more live data

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            EnvyHybridPolicy(locality_weight=1.5)

    def test_invalid_age_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            EnvyHybridPolicy(age_scale_s=0.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("greedy", GreedyPolicy),
        ("cost-benefit", CostBenefitPolicy),
        ("envy", EnvyHybridPolicy),
    ])
    def test_by_name(self, name, cls):
        assert isinstance(cleaning_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            cleaning_policy("lifo")
