"""The vector kernel is an *engine*, not a behaviour.

Three contracts pinned here:

1. **Vector vs reference, within declared tolerance** — across the
   paper's workloads, one device per class, and a Hypothesis sweep of
   seeds/lengths inside the vector envelope,
   :func:`repro.kernel.tolerance.compare_results` must report zero
   mismatches.  The test also asserts the vector path actually ran
   (``extra["kernel"] == "vector"``, no silent fallback) — a sweep that
   quietly compared batched against batched would prove nothing.
2. **Reference path vs golden, bit-for-bit** — ``kernel="reference"``
   must still reproduce ``tests/golden/equivalence_golden.json``
   (``float.hex()`` equality).  The State/Model device split and the
   kernel dispatch layer both sit on this path; neither may move a bit.
3. **Cross-kernel cache identity** — a unit's kernel is part of its
   cache key, so a vector result can never replay for a batched (or
   default) request, and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.engine import ResultCache, WorkUnit, cache_key, execute
from repro.kernel.tolerance import compare_results
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import workload_by_name
from tests.golden.generate_equivalence_golden import (
    DEVICES,
    WORKLOADS,
    hexify,
    response_record,
)

GOLDEN = Path(__file__).parent / "golden" / "equivalence_golden.json"


def _trace(workload: str, n_ops: int, seed: int):
    if workload == "synth":
        return SyntheticWorkload().generate(n_ops=n_ops, seed=seed)
    return workload_by_name(workload).generate(seed=seed, n_ops=n_ops)


def _envelope_config(device: str, **kwargs) -> SimulationConfig:
    """A config inside the vector envelope for ``device``.

    The SDP5A datasheet advertises decoupled erasure, which only the
    event path models; the envelope covers its coupled mode.
    """
    if device == "sdp5a-datasheet":
        kwargs.setdefault("async_erase", False)
    return SimulationConfig(device=device, **kwargs)


def _pair(trace, config):
    """(reference result, vector result) — vector must not fall back."""
    reference = simulate(trace, config, kernel="reference")
    vector = simulate(trace, config, kernel="vector")
    assert vector.extra.get("kernel") == "vector", (
        f"vector fell back: {vector.extra.get('kernel_fallback_reason')}"
    )
    return reference, vector


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("device", DEVICES)
def test_vector_matches_reference(workload, device):
    """4 workloads x 3 device families: zero tolerance violations."""
    trace = _trace(workload, n_ops=800, seed=7)
    reference, vector = _pair(trace, _envelope_config(device))
    assert compare_results(reference, vector) == []


@settings(max_examples=12, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    device=st.sampled_from(DEVICES),
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=50, max_value=400),
)
def test_vector_matches_reference_property(workload, device, seed, n_ops):
    """No seed or trace length inside the envelope may separate them."""
    trace = _trace(workload, n_ops=n_ops, seed=seed)
    reference, vector = _pair(trace, _envelope_config(device))
    assert compare_results(reference, vector) == []


def test_vector_falls_back_outside_envelope():
    """Outside the envelope the result is the batched answer, labelled."""
    trace = _trace("mac", n_ops=200, seed=1)
    config = SimulationConfig(device="intel-datasheet",
                              cleaning_policy="cost-benefit")
    result = simulate(trace, config, kernel="vector")
    assert result.extra["kernel"] == "batched"
    assert result.extra["kernel_requested"] == "vector"
    assert "cost-benefit" in result.extra["kernel_fallback_reason"]
    batched = simulate(trace, config)
    assert result.energy_j == batched.energy_j
    assert result.duration_s == batched.duration_s


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("device", DEVICES)
def test_reference_kernel_is_bit_identical_to_golden(golden, workload, device):
    """``kernel="reference"`` still reproduces the pinned fixture."""
    expected = golden["cases"][f"{workload}/{device}"]
    trace = _trace(workload, n_ops=golden["n_ops"], seed=golden["seed"])
    result = simulate(trace, SimulationConfig(device=device),
                      kernel="reference")
    observed = {
        "trace_name": result.trace_name,
        "device_name": result.device_name,
        "duration_s": hexify(result.duration_s),
        "energy_j": hexify(result.energy_j),
        "energy_breakdown": hexify(result.energy_breakdown),
        "read": response_record(result.read_response),
        "write": response_record(result.write_response),
        "overall": response_record(result.overall_response),
        "n_reads": result.n_reads,
        "n_writes": result.n_writes,
        "n_deletes": result.n_deletes,
        "dram_hit_rate": hexify(result.dram_hit_rate),
        "device_stats": hexify(result.device_stats),
    }
    for key, value in expected.items():
        assert observed[key] == value, (
            f"{workload}/{device}: {key!r} diverged from golden"
        )


class TestCrossKernelCache:
    def test_kernel_is_part_of_the_cache_key(self):
        keys = {
            kernel: cache_key(WorkUnit("table4", 0.05, kernel=kernel))
            for kernel in (None, "reference", "batched", "vector")
        }
        assert len(set(keys.values())) == len(keys)

    def test_vector_result_never_replays_for_batched(self, tmp_path):
        cache = ResultCache(tmp_path)
        vector_unit = WorkUnit("table2", 0.02, kernel="vector")
        first = execute([vector_unit], jobs=1, cache=cache)
        assert first[0].cache == "miss" and first[0].ok

        batched_unit = WorkUnit("table2", 0.02, kernel="batched")
        crossed = execute([batched_unit], jobs=1, cache=cache)
        assert crossed[0].cache == "miss" and crossed[0].ok

        replay = execute([WorkUnit("table2", 0.02, kernel="vector")],
                         jobs=1, cache=cache)
        assert replay[0].cache == "hit"
        assert replay[0].result.render() == first[0].result.render()
