"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.buffer_cache import BufferCache
from repro.cache.policies import LruPolicy
from repro.core.metrics import ResponseAccumulator
from repro.devices.flashcard import FlashCard
from repro.devices.power import EnergyMeter
from repro.devices.specs import INTEL_DATASHEET, NEC_DRAM
from repro.flash.ftl import SectorMap
from repro.flash.segment import Segment
from repro.units import KB


# ---------------------------------------------------------------------------
# SectorMap: free + dirty + mapped == n_sectors under any operation sequence
# ---------------------------------------------------------------------------

sector_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim", "erase"]),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=200,
)


@given(ops=sector_ops)
def test_sector_map_invariant(ops):
    sectors = SectorMap(16)
    for kind, logical in ops:
        if kind == "write":
            try:
                sectors.write(logical)
            except Exception:
                pass  # out of sectors is a legal terminal condition
        elif kind == "trim":
            sectors.trim(logical)
        else:
            sectors.erase_one()
        sectors.check_invariant()


@given(ops=sector_ops)
def test_sector_map_physical_uniqueness(ops):
    """No two logical sectors ever share a physical sector."""
    sectors = SectorMap(16)
    for kind, logical in ops:
        if kind == "write":
            try:
                sectors.write(logical)
            except Exception:
                pass
        elif kind == "trim":
            sectors.trim(logical)
        else:
            sectors.erase_one()
        physical = [sectors.physical_for(l) for l in range(16)]
        physical = [p for p in physical if p is not None]
        assert len(physical) == len(set(physical))


# ---------------------------------------------------------------------------
# Segment: free + live + dead == capacity
# ---------------------------------------------------------------------------

@given(
    actions=st.lists(
        st.tuples(st.sampled_from(["alloc", "kill", "erase"]),
                  st.integers(0, 30)),
        max_size=120,
    )
)
def test_segment_invariant(actions):
    segment = Segment(0, 16)
    for kind, logical in actions:
        try:
            if kind == "alloc":
                segment.allocate(logical, 0.0)
            elif kind == "kill":
                segment.invalidate(logical)
            else:
                segment.erase()
        except Exception:
            pass  # illegal transitions raise; state must stay consistent
        segment.check_invariant()


# ---------------------------------------------------------------------------
# FlashCard: map/segment consistency under random write/delete streams
# ---------------------------------------------------------------------------

card_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "delete"]),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=150,
)


@settings(max_examples=40, deadline=None)
@given(ops=card_ops)
def test_flash_card_invariants_under_random_traffic(ops):
    from dataclasses import replace

    spec = replace(INTEL_DATASHEET, segment_bytes=16 * KB)
    card = FlashCard(spec, capacity_bytes=128 * KB, block_bytes=1024)
    clock = 0.0
    for kind, logical in ops:
        if kind == "write":
            clock = card.write(clock, 1024, [logical], 1)
        else:
            card.delete(clock, [logical])
        card.check_invariants()
    # Conservation: live blocks equal distinct written-and-not-deleted ids.
    expected_live = set()
    for kind, logical in ops:
        if kind == "write":
            expected_live.add(logical)
        else:
            expected_live.discard(logical)
    assert card.live_blocks == len(expected_live)


@settings(max_examples=20, deadline=None)
@given(ops=card_ops, idle=st.floats(min_value=0.0, max_value=30.0))
def test_flash_card_energy_monotone_with_idle(ops, idle):
    """Adding trailing idle time never reduces total energy."""
    from dataclasses import replace

    spec = replace(INTEL_DATASHEET, segment_bytes=16 * KB)
    card = FlashCard(spec, capacity_bytes=128 * KB, block_bytes=1024)
    clock = 0.0
    for kind, logical in ops:
        if kind == "write":
            clock = card.write(clock, 1024, [logical], 1)
        else:
            card.delete(clock, [logical])
    energy_now = card.energy.total_j
    card.advance(clock + idle)
    assert card.energy.total_j >= energy_now - 1e-9


# ---------------------------------------------------------------------------
# LRU cache: never exceeds capacity; resident set is the most recent blocks
# ---------------------------------------------------------------------------

@given(
    blocks=st.lists(st.integers(min_value=0, max_value=40), max_size=200),
    capacity=st.integers(min_value=1, max_value=12),
)
def test_lru_cache_capacity_respected(blocks, capacity):
    cache = BufferCache(capacity * KB, KB, NEC_DRAM)
    for block in blocks:
        cache.install([block])
        assert len(cache.policy) <= capacity


@given(blocks=st.lists(st.integers(min_value=0, max_value=10), max_size=80))
def test_lru_semantics_match_reference(blocks):
    """The LRU policy agrees with an ordered-list reference model."""
    capacity = 4
    policy = LruPolicy()
    reference: list[int] = []
    for block in blocks:
        if block in policy:
            policy.touch(block)
            reference.remove(block)
            reference.append(block)
        else:
            while len(policy) >= capacity:
                victim = policy.evict()
                assert victim == reference.pop(0)
            policy.insert(block)
            reference.append(block)
    assert sorted(reference) == sorted(
        block for block in range(11) if block in policy
    )


# ---------------------------------------------------------------------------
# ResponseAccumulator vs a batch reference
# ---------------------------------------------------------------------------

@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
def test_accumulator_matches_batch_statistics(values):
    acc = ResponseAccumulator()
    for value in values:
        acc.add(value)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert acc.mean == pytest.approx(mean, rel=1e-9, abs=1e-9)
    assert acc.max == max(values)
    assert acc.std == pytest.approx(math.sqrt(variance), rel=1e-6, abs=1e-6)


# ---------------------------------------------------------------------------
# EnergyMeter: total equals the sum of charges
# ---------------------------------------------------------------------------

@given(
    charges=st.lists(
        st.tuples(
            st.sampled_from(["read", "write", "idle"]),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        max_size=100,
    )
)
def test_energy_meter_additivity(charges):
    meter = EnergyMeter("prop")
    expected = 0.0
    for bucket, power, duration in charges:
        meter.charge(bucket, power, duration)
        expected += power * duration
    assert meter.total_j == pytest.approx(expected, rel=1e-9, abs=1e-9)
    assert meter.total_j == pytest.approx(
        sum(meter.breakdown().values()), rel=1e-12, abs=1e-12
    )
