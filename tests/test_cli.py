"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_devices_lists_registry(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "cu140-datasheet" in out
    assert "intel-datasheet" in out


def test_experiments_lists_registry(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig5" in out


def test_simulate_synth(capsys):
    code = main([
        "simulate", "--workload", "synth", "--ops", "500",
        "--device", "sdp5-datasheet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "energy" in out
    assert "sdp5-datasheet" in out


def test_simulate_flash_card_reports_wear(capsys):
    main([
        "simulate", "--workload", "synth", "--ops", "500",
        "--device", "intel-datasheet",
    ])
    assert "wear" in capsys.readouterr().out


def test_simulate_no_spin_down(capsys):
    code = main([
        "simulate", "--workload", "mac", "--ops", "500", "--no-spin-down",
    ])
    assert code == 0


def test_generate_and_analyze_roundtrip(tmp_path, capsys):
    path = tmp_path / "t.txt"
    assert main(["generate", "--workload", "synth", "--ops", "400",
                 "-o", str(path)]) == 0
    assert path.exists()
    capsys.readouterr()
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "distinct data" in out
    assert "LRU hit rate" in out


def test_generate_trace_is_loadable(tmp_path):
    from repro.traces.io import load_trace

    path = tmp_path / "t.txt"
    main(["generate", "--workload", "dos", "--ops", "300", "-o", str(path)])
    trace = load_trace(path)
    assert len(trace) == 300
    assert trace.block_size == 512


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--scale", "1.0"]) == 0
    assert "manufacturer specifications" in capsys.readouterr().out


def test_experiment_command_accepts_seed(capsys):
    assert main(["experiment", "table2", "--scale", "1.0", "--seed", "9"]) == 0
    assert "manufacturer specifications" in capsys.readouterr().out


def test_faults_command_reports_reliability(capsys):
    code = main([
        "faults", "--workload", "synth", "--ops", "800", "--seed", "3",
        "--device", "intel-datasheet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "reliability" in out
    assert "retries" in out
    assert "power losses" in out
    assert "recovery" in out


def test_faults_command_is_deterministic(capsys):
    argv = ["faults", "--workload", "synth", "--ops", "800", "--seed", "5",
            "--read-error-rate", "0.05", "--write-error-rate", "0.05"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_faults_command_power_loss_flag(capsys):
    code = main([
        "faults", "--workload", "synth", "--ops", "800", "--seed", "2",
        "--device", "cu140-datasheet",
        "--power-loss-at", "400", "--power-loss-at", "700",
        "--read-error-rate", "0", "--write-error-rate", "0",
        "--bad-block-rate", "0",
    ])
    assert code == 0
    assert "power losses" in capsys.readouterr().out


def test_simulate_from_trace_file(tmp_path, capsys):
    path = tmp_path / "t.txt"
    main(["generate", "--workload", "synth", "--ops", "300", "-o", str(path)])
    capsys.readouterr()
    assert main(["simulate", "--workload", str(path), "--device",
                 "intel-datasheet"]) == 0


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- the engine front end: repro run / repro cache -------------------------


def test_run_single_experiment(tmp_path, capsys):
    code = main(["run", "table2", "--scale", "1.0", "--jobs", "1",
                 "--cache-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 unit(s): 1 ok" in out
    assert "manifest:" in out


def test_run_unknown_experiment_errors(tmp_path, capsys):
    code = main(["run", "no-such-experiment", "--cache-dir", str(tmp_path)])
    assert code == 2
    assert "no-such-experiment" in capsys.readouterr().err


def test_run_second_invocation_is_cache_replay(tmp_path, capsys):
    argv = ["run", "table2", "fig4", "--scale", "0.05", "--jobs", "1",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    assert "2 miss(es)" in capsys.readouterr().out
    assert main(argv) == 0
    assert "2 cache hit(s)" in capsys.readouterr().out


def test_run_seed_sweep_and_output(tmp_path, capsys):
    report = tmp_path / "report.txt"
    code = main(["run", "fig4", "--scale", "0.05", "--jobs", "1",
                 "--seed", "1", "--seed", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--output", str(report), "--quiet"])
    assert code == 0
    assert "2 unit(s): 2 ok" in capsys.readouterr().out
    assert report.read_text().count("Figure 4") == 2


def test_run_manifest_written_where_asked(tmp_path, capsys):
    manifest = tmp_path / "m.jsonl"
    assert main(["run", "table2", "--scale", "1.0", "--jobs", "1",
                 "--cache-dir", str(tmp_path), "--no-cache",
                 "--manifest", str(manifest), "--quiet"]) == 0
    capsys.readouterr()
    from repro.engine import read_manifest

    records = read_manifest(manifest)
    assert [r["record"] for r in records] == ["run", "unit"]
    assert records[1]["cache"] == "off"


def test_run_keeps_completed_reports_when_one_fails(tmp_path, capsys,
                                                    monkeypatch):
    from repro.experiments.base import Experiment
    from repro.experiments.registry import _EXPERIMENTS

    def explode(scale=1.0, seed=None):
        raise RuntimeError("mid-run crash")

    monkeypatch.setitem(_EXPERIMENTS, "zz-broken", Experiment(
        experiment_id="zz-broken", title="Broken", paper_ref="-", run=explode,
    ))
    report = tmp_path / "report.txt"
    code = main(["run", "table2", "zz-broken", "--scale", "1.0", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--output", str(report), "--quiet"])
    assert code == 1
    captured = capsys.readouterr()
    assert "1 failed" in captured.out
    assert "mid-run crash" in captured.err
    # the completed prefix survived in the streamed output file
    assert "manufacturer specifications" in report.read_text()


def test_run_rejects_bad_scale(tmp_path):
    for bad in ("0", "1.5", "-0.1", "banana"):
        with pytest.raises(SystemExit):
            main(["run", "table2", "--scale", bad,
                  "--cache-dir", str(tmp_path)])


def test_experiment_rejects_bad_scale():
    with pytest.raises(SystemExit):
        main(["experiment", "table2", "--scale", "0"])


def test_runner_main_rejects_bad_scale():
    from repro.experiments.runner import main as runner_main

    with pytest.raises(SystemExit):
        runner_main(["table2", "--scale", "2"])


def test_runner_main_streams_output(tmp_path, capsys):
    from repro.experiments.runner import main as runner_main

    report = tmp_path / "report.txt"
    assert runner_main(["table2", "--scale", "1.0",
                        "--output", str(report)]) == 0
    assert "manufacturer specifications" in report.read_text()
    assert "manufacturer specifications" in capsys.readouterr().out


def test_cache_stats_and_clear(tmp_path, capsys):
    assert main(["run", "table2", "--scale", "1.0", "--jobs", "1",
                 "--cache-dir", str(tmp_path), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    stats_out = capsys.readouterr().out
    assert "entries" in stats_out
    assert "1" in stats_out
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 1" in capsys.readouterr().out


def test_cache_stats_on_never_created_dir(tmp_path, capsys):
    missing = tmp_path / "never" / "created"
    assert not missing.exists()
    assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
    out = capsys.readouterr().out
    assert "entries      0" in out
    assert not missing.exists()  # stats must not create the cache either


def test_profile_command_writes_artifact(tmp_path, capsys):
    import json

    artifact = tmp_path / "reports" / "profile.json"
    assert main(["profile", "table3", "--scale", "0.05", "--top", "3",
                 "-o", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "time share by layer" in out
    assert "top 3 functions" in out
    report = json.loads(artifact.read_text())
    assert report["experiment"] == "table3"
    assert set(report["phases"]) == {"cold_run_s", "warm_run_s",
                                     "profiled_run_s"}
    assert report["layers"], "per-subpackage shares must not be empty"
    assert len(report["top_functions"]) <= 3
    shares = {row["name"] for row in report["modules"]}
    assert any(name.startswith("traces") for name in shares)


def test_profile_command_rejects_unknown_experiment(capsys):
    assert main(["profile", "not-an-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


# -- observability: repro trace / repro metrics / run artifacts ------------


def test_trace_command_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "t.json"
    code = main(["trace", "exp_table3", "--scale", "0.05",
                 "--trace-out", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "agreement ok" in stdout
    assert "MISMATCH" not in stdout
    data = json.loads(out.read_text())  # round-trips json.loads
    assert data["traceEvents"]
    # Per-layer durations in the artifact agree with the reports to 1e-9
    # (they are the collector's exact floats, so in fact bit-for-bit).
    from repro.obs.events import read_chrome_layer_totals

    per_run = read_chrome_layer_totals(out)
    assert len(per_run) == 3  # one probe per device class
    assert all(total > 0 for run in per_run for total in run.values())


def test_trace_command_jsonl_sidecar(tmp_path, capsys):
    out = tmp_path / "t.json"
    side = tmp_path / "t.jsonl"
    assert main(["trace", "fig2", "--scale", "0.03",
                 "--trace-out", str(out), "--jsonl-out", str(side)]) == 0
    from repro.obs.events import iter_jsonl

    kinds = {record["kind"] for record in iter_jsonl(side)}
    assert {"run", "request", "layer"} <= kinds


def test_trace_command_unknown_experiment(tmp_path, capsys):
    code = main(["trace", "nope", "--trace-out", str(tmp_path / "t.json")])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_metrics_command_writes_json_and_prometheus(tmp_path, capsys):
    import json

    out = tmp_path / "m.json"
    prom = tmp_path / "m.prom"
    code = main(["metrics", "table3", "--scale", "0.05",
                 "--metrics-out", str(out), "--prom-out", str(prom)])
    assert code == 0
    data = json.loads(out.read_text())
    assert len(data["runs"]) == 3
    run = data["runs"][0]
    assert run["agreement_max_abs_diff"] == 0.0
    assert run["metrics"]["series"], "time-series must not be empty"
    text = prom.read_text()
    assert "# TYPE repro_ops_total counter" in text
    assert "repro_response_time_s_bucket" in text


def test_run_with_observability_artifacts(tmp_path, capsys):
    import json

    traces = tmp_path / "traces"
    metrics = tmp_path / "metrics"
    code = main(["run", "fig4", "--scale", "0.05", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--manifest", str(tmp_path / "m.jsonl"),
                 "--trace-out", str(traces),
                 "--metrics-out", str(metrics), "--quiet"])
    assert code == 0
    capsys.readouterr()
    trace_files = list(traces.glob("*.trace.json"))
    metric_files = list(metrics.glob("*.metrics.json"))
    assert len(trace_files) == 1
    assert len(metric_files) == 1
    json.loads(trace_files[0].read_text())
    json.loads(metric_files[0].read_text())
    # The manifest references both artifacts on the unit record.
    from repro.engine import read_manifest

    unit = [r for r in read_manifest(tmp_path / "m.jsonl")
            if r["record"] == "unit"][0]
    assert unit["artifacts"] == {"trace": str(trace_files[0]),
                                 "metrics": str(metric_files[0])}


def test_run_observed_recomputes_instead_of_cache_replay(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["run", "fig4", "--scale", "0.05", "--jobs", "1",
                 "--cache-dir", cache_dir, "--quiet"]) == 0
    capsys.readouterr()
    assert main(["run", "fig4", "--scale", "0.05", "--jobs", "1",
                 "--cache-dir", cache_dir, "--quiet",
                 "--trace-out", str(tmp_path / "traces")]) == 0
    out = capsys.readouterr().out
    assert "0 cache hit(s)" in out  # replay has nothing to record
    assert (tmp_path / "traces").glob("*.trace.json")


# -- repro inspect: report on stdout, diagnostics on stderr ----------------


def test_inspect_healthy_run_keeps_stderr_empty(capsys):
    assert main(["inspect", "table4", "--scale", "0.03"]) == 0
    captured = capsys.readouterr()
    assert "layer" in captured.out
    assert captured.err == ""


def test_inspect_routes_mismatch_diagnostics_to_stderr(capsys, monkeypatch):
    from repro.experiments.base import ExperimentResult, Table

    report = ExperimentResult(
        experiment_id="inspect:table4",
        title="Per-layer attribution",
        tables=(Table(title="probe", headers=("layer",), rows=(("dram",),)),),
        notes=("a note",),
        diagnostics=(
            "ATTRIBUTION MISMATCH: a probe's per-layer components do not "
            "sum to its reported totals",
            "probe x: latency 1.0 vs 2.0 (diff -1)",
        ),
    )
    monkeypatch.setattr(
        "repro.experiments.inspection.inspect_experiment",
        lambda experiment_id, scale, seed: (report, False),
    )
    code = main(["inspect", "table4"])
    assert code == 1
    captured = capsys.readouterr()
    # Report (tables, notes) on stdout; failure detail only on stderr.
    assert "probe" in captured.out
    assert "MISMATCH" not in captured.out
    assert "ATTRIBUTION MISMATCH" in captured.err
    assert "diff -1" in captured.err


def test_inspect_unknown_experiment_exits_2(capsys):
    assert main(["inspect", "not-an-experiment"]) == 2
    captured = capsys.readouterr()
    assert "unknown experiment" in captured.err
    assert captured.out == ""
