"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_devices_lists_registry(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "cu140-datasheet" in out
    assert "intel-datasheet" in out


def test_experiments_lists_registry(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig5" in out


def test_simulate_synth(capsys):
    code = main([
        "simulate", "--workload", "synth", "--ops", "500",
        "--device", "sdp5-datasheet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "energy" in out
    assert "sdp5-datasheet" in out


def test_simulate_flash_card_reports_wear(capsys):
    main([
        "simulate", "--workload", "synth", "--ops", "500",
        "--device", "intel-datasheet",
    ])
    assert "wear" in capsys.readouterr().out


def test_simulate_no_spin_down(capsys):
    code = main([
        "simulate", "--workload", "mac", "--ops", "500", "--no-spin-down",
    ])
    assert code == 0


def test_generate_and_analyze_roundtrip(tmp_path, capsys):
    path = tmp_path / "t.txt"
    assert main(["generate", "--workload", "synth", "--ops", "400",
                 "-o", str(path)]) == 0
    assert path.exists()
    capsys.readouterr()
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "distinct data" in out
    assert "LRU hit rate" in out


def test_generate_trace_is_loadable(tmp_path):
    from repro.traces.io import load_trace

    path = tmp_path / "t.txt"
    main(["generate", "--workload", "dos", "--ops", "300", "-o", str(path)])
    trace = load_trace(path)
    assert len(trace) == 300
    assert trace.block_size == 512


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--scale", "1.0"]) == 0
    assert "manufacturer specifications" in capsys.readouterr().out


def test_experiment_command_accepts_seed(capsys):
    assert main(["experiment", "table2", "--scale", "1.0", "--seed", "9"]) == 0
    assert "manufacturer specifications" in capsys.readouterr().out


def test_faults_command_reports_reliability(capsys):
    code = main([
        "faults", "--workload", "synth", "--ops", "800", "--seed", "3",
        "--device", "intel-datasheet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "reliability" in out
    assert "retries" in out
    assert "power losses" in out
    assert "recovery" in out


def test_faults_command_is_deterministic(capsys):
    argv = ["faults", "--workload", "synth", "--ops", "800", "--seed", "5",
            "--read-error-rate", "0.05", "--write-error-rate", "0.05"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_faults_command_power_loss_flag(capsys):
    code = main([
        "faults", "--workload", "synth", "--ops", "800", "--seed", "2",
        "--device", "cu140-datasheet",
        "--power-loss-at", "400", "--power-loss-at", "700",
        "--read-error-rate", "0", "--write-error-rate", "0",
        "--bad-block-rate", "0",
    ])
    assert code == 0
    assert "power losses" in capsys.readouterr().out


def test_simulate_from_trace_file(tmp_path, capsys):
    path = tmp_path / "t.txt"
    main(["generate", "--workload", "synth", "--ops", "300", "-o", str(path)])
    capsys.readouterr()
    assert main(["simulate", "--workload", str(path), "--device",
                 "intel-datasheet"]) == 0


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
