"""Simulation configuration validation."""

import pytest

from repro.core.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.units import MB


def test_defaults_match_paper():
    config = SimulationConfig()
    assert config.device == "cu140-datasheet"
    assert config.dram_bytes == 2 * MB
    assert config.sram_bytes == 32 * 1024  # "benefit of the doubt"
    assert config.spin_down_timeout_s == 5.0
    assert config.flash_utilization == 0.8
    assert config.warm_fraction == 0.1
    assert config.cleaning_policy == "greedy"
    assert not config.write_back
    assert not config.response_includes_queueing


def test_negative_dram_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(dram_bytes=-1)


def test_negative_sram_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(sram_bytes=-1)


def test_utilization_bounds():
    with pytest.raises(ConfigurationError):
        SimulationConfig(flash_utilization=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(flash_utilization=1.1)
    SimulationConfig(flash_utilization=1.0)  # boundary ok


def test_warm_fraction_bounds():
    with pytest.raises(ConfigurationError):
        SimulationConfig(warm_fraction=1.0)
    SimulationConfig(warm_fraction=0.0)


def test_warm_fraction_negative_rejected():
    with pytest.raises(ConfigurationError, match="warm_fraction"):
        SimulationConfig(warm_fraction=-0.1)


def test_warm_fraction_above_one_rejected():
    with pytest.raises(ConfigurationError, match="warm_fraction"):
        SimulationConfig(warm_fraction=1.5)


def test_negative_spin_down_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(spin_down_timeout_s=-1.0)


def test_none_spin_down_allowed():
    assert SimulationConfig(spin_down_timeout_s=None).spin_down_timeout_s is None


def test_with_options_returns_modified_copy():
    base = SimulationConfig()
    variant = base.with_options(device="intel-datasheet", dram_bytes=0)
    assert variant.device == "intel-datasheet"
    assert variant.dram_bytes == 0
    assert base.device == "cu140-datasheet"  # original untouched


def test_with_options_validates():
    with pytest.raises(ConfigurationError):
        SimulationConfig().with_options(flash_utilization=2.0)


def test_describe_is_complete():
    described = SimulationConfig().describe()
    for key in ("device", "dram_bytes", "sram_bytes", "flash_utilization",
                "cleaning_policy", "write_back", "warm_fraction"):
        assert key in described


def test_frozen():
    config = SimulationConfig()
    with pytest.raises(AttributeError):
        config.dram_bytes = 0


def test_fault_plan_default_none_and_described():
    config = SimulationConfig()
    assert config.fault_plan is None
    assert config.describe()["fault_plan"] is None


def test_fault_plan_accepted_and_described():
    from repro.faults.plan import FaultPlan

    plan = FaultPlan(seed=5, transient_read_rate=0.1)
    config = SimulationConfig(fault_plan=plan)
    described = config.describe()["fault_plan"]
    assert described["seed"] == 5
    assert described["transient_read_rate"] == 0.1


def test_fault_plan_wrong_type_rejected():
    with pytest.raises(ConfigurationError, match="fault_plan"):
        SimulationConfig(fault_plan={"seed": 1})
