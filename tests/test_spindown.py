"""Spin-down policies."""

import pytest

from repro.devices.spindown import (
    AdaptiveTimeoutPolicy,
    FixedTimeoutPolicy,
    NeverSpinDownPolicy,
)
from repro.errors import ConfigurationError


def test_fixed_timeout_deadline():
    policy = FixedTimeoutPolicy(5.0)
    assert policy.spin_down_at(idle_since=10.0) == 15.0


def test_fixed_timeout_zero_allowed():
    policy = FixedTimeoutPolicy(0.0)
    assert policy.spin_down_at(3.0) == 3.0


def test_fixed_timeout_negative_rejected():
    with pytest.raises(ConfigurationError):
        FixedTimeoutPolicy(-1.0)


def test_never_policy():
    assert NeverSpinDownPolicy().spin_down_at(0.0) is None


def test_adaptive_grows_after_premature_spin_down():
    policy = AdaptiveTimeoutPolicy(initial_s=5.0)
    before = policy.threshold_s
    policy.note_spin_up(at=10.0, idle_duration=6.0)  # woke soon after
    assert policy.threshold_s > before


def test_adaptive_shrinks_after_long_sleep():
    policy = AdaptiveTimeoutPolicy(initial_s=5.0)
    before = policy.threshold_s
    policy.note_spin_up(at=1000.0, idle_duration=500.0)
    assert policy.threshold_s < before


def test_adaptive_respects_bounds():
    policy = AdaptiveTimeoutPolicy(initial_s=5.0, minimum_s=1.0, maximum_s=30.0)
    for _ in range(50):
        policy.note_spin_up(0.0, 1.0)
    assert policy.threshold_s <= 30.0
    for _ in range(50):
        policy.note_spin_up(0.0, 10_000.0)
    assert policy.threshold_s >= 1.0


def test_adaptive_invalid_bounds():
    with pytest.raises(ConfigurationError):
        AdaptiveTimeoutPolicy(initial_s=50.0, minimum_s=1.0, maximum_s=30.0)
