"""Battery-backed SRAM write buffer."""

import pytest

from repro.cache.sram_buffer import SramWriteBuffer
from repro.devices.specs import NEC_SRAM
from repro.errors import ConfigurationError
from repro.units import KB


def make_buffer(capacity_kb=32, block=1024):
    return SramWriteBuffer(capacity_kb * KB, block, NEC_SRAM)


def test_capacity_blocks():
    assert make_buffer(32).capacity_blocks == 32


def test_zero_size_disabled():
    buffer = SramWriteBuffer(0, KB, NEC_SRAM)
    assert not buffer.enabled


def test_add_and_contains():
    buffer = make_buffer()
    buffer.add([1, 2])
    assert buffer.contains(1)
    assert not buffer.contains(3)
    assert buffer.dirty_count == 2


def test_fits_counts_only_new_blocks():
    buffer = make_buffer(capacity_kb=4)
    buffer.add([1, 2, 3, 4])
    assert buffer.free_blocks == 0
    assert buffer.fits([1, 2])  # rewrites of buffered blocks always fit
    assert not buffer.fits([5])


def test_can_ever_fit():
    buffer = make_buffer(capacity_kb=4)
    assert buffer.can_ever_fit([1, 2, 3, 4])
    assert not buffer.can_ever_fit([1, 2, 3, 4, 5])
    assert buffer.can_ever_fit([1, 1, 1, 1, 1])  # duplicates collapse


def test_drain_returns_and_clears():
    buffer = make_buffer()
    buffer.add([3, 1, 2])
    drained = buffer.drain()
    assert set(drained) == {1, 2, 3}
    assert buffer.dirty_count == 0


def test_invalidate_drops_blocks():
    buffer = make_buffer()
    buffer.add([1, 2])
    buffer.invalidate([1])
    assert not buffer.contains(1)
    assert buffer.contains(2)


def test_absorbed_writes_counter():
    buffer = make_buffer()
    buffer.add([1])
    buffer.add([2])
    assert buffer.absorbed_writes == 2


def test_standby_energy():
    buffer = make_buffer(capacity_kb=32)
    buffer.advance(1000.0)
    expected = NEC_SRAM.standby_power_w_per_byte * 32 * KB * 1000.0
    assert buffer.energy.total_j == pytest.approx(expected)


def test_access_time_and_active_energy():
    buffer = make_buffer()
    duration = buffer.access_time(2048)
    assert duration == pytest.approx(
        NEC_SRAM.access_latency_s + 2048 / NEC_SRAM.bandwidth_bps
    )
    assert buffer.energy.breakdown()["active"] > 0


def test_reset_accounting():
    buffer = make_buffer()
    buffer.add([1])
    buffer.advance(10.0)
    buffer.reset_accounting()
    assert buffer.energy.total_j == 0.0
    assert buffer.absorbed_writes == 0
    # Contents survive the accounting reset (it's the warm boundary).
    assert buffer.contains(1)


def test_negative_capacity_rejected():
    with pytest.raises(ConfigurationError):
        SramWriteBuffer(-1, KB, NEC_SRAM)
