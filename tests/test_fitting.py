"""Fitted-workload models: acceptance, determinism, engine invariance.

The acceptance criterion from the fitting design (DESIGN.md section 4j):
every bundled workload, fitted and regenerated at twice its length with
a fresh seed, must pass its own Table 3 conformance report.  On top of
that the model must be a *reproducible artifact* — the same model file
and seed produce a byte-identical trace in any process, and running the
``fitted_replay`` experiment through the engine gives the same result at
any ``--jobs`` level.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import ResultCache, execute
from repro.engine.unit import decompose
from repro.errors import TraceError
from repro.traces.fitting import FittedWorkload, fit_trace
from repro.traces.io import save_trace
from repro.traces.stats import compute_statistics

REPO_ROOT = Path(__file__).parent.parent

BUNDLED = ("mac", "dos", "hp", "synth")

#: Fit once per workload, reuse across tests (fitting runs calibration
#: probes; no need to pay for them repeatedly).
_FITTED: dict[str, FittedWorkload] = {}


def _source_trace(workload: str):
    if workload == "synth":
        from repro.traces.synthetic import SyntheticWorkload

        return SyntheticWorkload().generate(n_ops=4000, seed=7)
    from repro.traces.workloads import workload_by_name

    return workload_by_name(workload).generate(seed=7, n_ops=4000)


def _fitted(workload: str) -> FittedWorkload:
    if workload not in _FITTED:
        _FITTED[workload] = fit_trace(
            _source_trace(workload), name=f"{workload}-fitted", source=workload
        )
    return _FITTED[workload]


# -- acceptance: every bundled workload round-trips through fitting --------


@pytest.mark.parametrize("workload", BUNDLED)
def test_bundled_workload_fit_conforms_at_2x(workload):
    report = _fitted(workload).verify(seed=3, length=2.0)
    assert report.ok, (
        f"{workload}: 2x extension violates its Table 3 row:\n"
        + "\n".join(report.problems())
    )


@pytest.mark.parametrize("workload", BUNDLED)
def test_fitted_reference_matches_source_statistics(workload):
    model = _fitted(workload)
    source_stats = compute_statistics(_source_trace(workload))
    assert model.reference.n_records == source_stats.n_records
    assert model.reference.fraction_reads == source_stats.fraction_reads


# -- determinism: same model + seed => byte-identical trace ----------------


def test_generate_is_deterministic_in_process():
    model = _fitted("mac")
    one = model.generate(seed=5, n_ops=1500)
    two = model.generate(seed=5, n_ops=1500)
    assert [
        (r.time, r.op, r.file_id, r.offset, r.size) for r in one
    ] == [(r.time, r.op, r.file_id, r.offset, r.size) for r in two]
    other = model.generate(seed=6, n_ops=1500)
    assert [r.time for r in one] != [r.time for r in other]


_SUBPROCESS_SCRIPT = """
import sys
from repro.traces.fitting import FittedWorkload
from repro.traces.io import save_trace
model = FittedWorkload.load(sys.argv[1])
save_trace(model.generate(seed=5, n_ops=1500), sys.argv[2])
"""


def _generate_in_subprocess(model_path: Path, out_path: Path) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT,
         str(model_path), str(out_path)],
        check=True,
        env=env,
        cwd=REPO_ROOT,
    )


def test_generate_is_byte_identical_across_processes(tmp_path):
    model = _fitted("mac")
    model_path = tmp_path / "mac.json"
    model.save(model_path)

    local = tmp_path / "local.txt"
    save_trace(
        FittedWorkload.load(model_path).generate(seed=5, n_ops=1500), local
    )
    child_a = tmp_path / "a.txt"
    child_b = tmp_path / "b.txt"
    _generate_in_subprocess(model_path, child_a)
    _generate_in_subprocess(model_path, child_b)

    reference = local.read_bytes()
    assert child_a.read_bytes() == reference
    assert child_b.read_bytes() == reference


# -- model artifact round-trip and failure modes ---------------------------


def test_model_roundtrip_preserves_content(tmp_path):
    model = _fitted("dos")
    path = tmp_path / "dos.json"
    model.save(path)
    loaded = FittedWorkload.load(path)
    assert loaded.to_dict() == model.to_dict()
    assert loaded.content_digest() == model.content_digest()
    assert loaded.spec == model.spec


def test_load_missing_model_is_trace_error(tmp_path):
    with pytest.raises(TraceError, match="no fitted-workload model"):
        FittedWorkload.load(tmp_path / "absent.json")


def test_load_invalid_json_is_trace_error(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(TraceError, match="not valid JSON"):
        FittedWorkload.load(path)


def test_load_wrong_format_is_trace_error(tmp_path):
    model = _fitted("dos")
    path = tmp_path / "alien.json"
    data = model.to_dict()
    data["format"] = "something-else"
    import json

    path.write_text(json.dumps(data))
    with pytest.raises(TraceError, match="format"):
        FittedWorkload.load(path)


def test_load_wrong_version_is_trace_error(tmp_path):
    model = _fitted("dos")
    path = tmp_path / "future.json"
    data = model.to_dict()
    data["version"] = 99
    import json

    path.write_text(json.dumps(data))
    with pytest.raises(TraceError, match="version"):
        FittedWorkload.load(path)


def test_content_digest_tracks_content(tmp_path):
    mac = _fitted("mac")
    dos = _fitted("dos")
    assert mac.content_digest() != dos.content_digest()


def test_fit_rejects_degenerate_trace():
    from repro.traces.record import Operation, TraceRecord
    from repro.traces.trace import Trace

    tiny = Trace(
        "tiny",
        [TraceRecord(time=0.0, op=Operation.READ, file_id=1, offset=0,
                     size=1024)],
    )
    with pytest.raises(TraceError, match="need >= 2 records"):
        fit_trace(tiny)


# -- engine invariance: fitted_replay is --jobs-independent ----------------


def _run_fitted_replay(model_path: Path, jobs: int, cache_root: Path):
    units = decompose(
        ["fitted_replay"],
        scale=0.05,
        kwargs={"model": f"fitted:{model_path}"},
    )
    outcomes = execute(units, jobs=jobs, cache=ResultCache(cache_root))
    assert len(outcomes) == 1
    assert outcomes[0].error is None, outcomes[0].error
    return outcomes[0].result


def test_fitted_replay_result_is_jobs_invariant(tmp_path):
    model_path = tmp_path / "mac.json"
    _fitted("mac").save(model_path)
    serial = _run_fitted_replay(model_path, 1, tmp_path / "cache1")
    pooled = _run_fitted_replay(model_path, 2, tmp_path / "cache2")
    assert serial.render() == pooled.render()
    # And the replay itself must pass its conformance gate.
    verdicts = {row[-1] for row in serial.tables[0].rows}
    assert verdicts == {"ok"}
