"""Battery, endurance, and cost analyses."""

import pytest

from repro.analysis.battery import BatteryModel, battery_extension
from repro.analysis.cost import (
    StorageCost,
    cost_comparison,
    disk_cost,
    dollars_per_mb_tradeoff,
    dram_cost,
    flash_cost,
    sram_cost,
)
from repro.analysis.endurance import endurance_report
from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.errors import ConfigurationError
from repro.units import MB


class TestBatteryModel:
    def test_paper_headline_22_percent(self):
        # Storage at 20% of system energy, flash at ~1/10 of disk energy.
        model = BatteryModel(storage_share=0.20)
        assert model.life_extension(0.1) == pytest.approx(0.22, abs=0.01)

    def test_doubling_at_54_percent_share(self):
        model = BatteryModel(storage_share=0.54)
        assert model.life_extension(0.0) == pytest.approx(1.17, abs=0.01)

    def test_no_savings_no_extension(self):
        assert BatteryModel().life_extension(1.0) == pytest.approx(0.0)

    def test_worse_storage_shrinks_life(self):
        assert BatteryModel().life_extension(2.0) < 0

    def test_invalid_share(self):
        with pytest.raises(ConfigurationError):
            BatteryModel(storage_share=0.0)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            BatteryModel().life_extension(-0.5)

    def test_battery_extension_from_results(self, small_synth_trace):
        disk = simulate(small_synth_trace, SimulationConfig())
        card = simulate(
            small_synth_trace, SimulationConfig(device="intel-datasheet")
        )
        extension = battery_extension(disk, card, storage_share=0.20)
        assert extension > 0.0


class TestEndurance:
    def test_report_from_card_result(self, small_synth_trace):
        result = simulate(
            small_synth_trace,
            SimulationConfig(device="intel-datasheet", flash_utilization=0.9),
        )
        report = endurance_report(result)
        assert report.lifetime_hours > 0
        assert report.wear_ratio_vs_baseline is None

    def test_ratio_against_baseline(self, small_synth_trace):
        low = simulate(
            small_synth_trace,
            SimulationConfig(device="intel-datasheet", flash_utilization=0.5),
        )
        high = simulate(
            small_synth_trace,
            SimulationConfig(device="intel-datasheet", flash_utilization=0.95),
        )
        report = endurance_report(high, baseline=low)
        assert report.wear_ratio_vs_baseline is not None

    def test_disk_result_rejected(self, small_synth_trace):
        disk = simulate(small_synth_trace, SimulationConfig())
        with pytest.raises(ConfigurationError):
            endurance_report(disk)

    def test_lifetime_years(self, small_synth_trace):
        result = simulate(
            small_synth_trace,
            SimulationConfig(device="intel-datasheet", flash_utilization=0.9),
        )
        report = endurance_report(result)
        if report.lifetime_hours != float("inf"):
            assert report.lifetime_years == pytest.approx(
                report.lifetime_hours / 8760
            )


class TestCost:
    def test_flash_more_expensive_than_disk(self):
        comparison = cost_comparison(10 * MB)
        assert comparison["flash"].low_dollars > comparison["disk"].high_dollars

    def test_paper_price_ranges(self):
        flash = flash_cost(1 * MB)
        assert flash.low_dollars == pytest.approx(30.0)
        assert flash.high_dollars == pytest.approx(50.0)
        disk = disk_cost(1 * MB)
        assert disk.low_dollars == pytest.approx(1.0)
        assert disk.high_dollars == pytest.approx(5.0)

    def test_sram_costs_a_few_dollars(self):
        cost = sram_cost(32 * 1024)
        assert 1.0 <= cost.midpoint_dollars <= 10.0

    def test_midpoint(self):
        cost = StorageCost("x", 10.0, 20.0)
        assert cost.midpoint_dollars == 15.0

    def test_dram_vs_flash_tradeoff(self):
        tradeoff = dollars_per_mb_tradeoff(2 * MB, 4 * MB)
        assert tradeoff["dram_dollars"] > 0
        assert tradeoff["flash_dollars"] > tradeoff["dram_dollars"]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            cost_comparison(0)

    def test_dram_cost_scales(self):
        assert dram_cost(4 * MB).midpoint_dollars == pytest.approx(
            4 * dram_cost(1 * MB).midpoint_dollars
        )
