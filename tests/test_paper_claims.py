"""Integration tests: the paper's quantitative claims, end to end.

These run the actual experiment pipeline at a moderate trace scale and
assert the *shapes* the paper reports — who wins, by roughly what factor,
where the knees fall.  Absolute Joules/milliseconds depend on the synthetic
traces and are checked elsewhere against looser bands.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.experiments.exp_table4 import simulate_row
from repro.experiments.traces_cache import trace_for

SCALE = 0.3


@pytest.fixture(scope="module")
def mac_results():
    devices = (
        "cu140-datasheet", "kh-datasheet", "sdp10-measured",
        "sdp5-datasheet", "intel-measured", "intel-datasheet",
    )
    return {device: simulate_row("mac", device, SCALE) for device in devices}


class TestEnergyClaims:
    def test_flash_order_of_magnitude_below_disk(self, mac_results):
        """Abstract: "flash memory can reduce energy consumption by an
        order of magnitude, compared to magnetic disk"."""
        disk = mac_results["cu140-datasheet"].energy_j
        card = mac_results["intel-datasheet"].energy_j
        assert disk / card > 7

    def test_flash_disk_saves_59_to_86_percent(self, mac_results):
        """Section 7: 'the flash disk file system can save 59-86% of the
        energy of the disk file system' (band widened for synthetic
        traces)."""
        disk = mac_results["cu140-datasheet"].energy_j
        flash_disk = mac_results["sdp5-datasheet"].energy_j
        saving = 1 - flash_disk / disk
        assert 0.55 <= saving <= 0.97

    def test_card_saves_about_90_percent(self, mac_results):
        disk = mac_results["cu140-datasheet"].energy_j
        card = mac_results["intel-datasheet"].energy_j
        assert 1 - card / disk >= 0.80

    def test_kittyhawk_worse_than_cu140(self, mac_results):
        assert (
            mac_results["kh-datasheet"].energy_j
            > mac_results["cu140-datasheet"].energy_j
        )

    def test_card_among_cheapest_on_energy(self, mac_results):
        """At full trace scale the card is cheapest outright (Table 4 /
        EXPERIMENTS.md); short runs amortize its cleaning transient less,
        so here it must sit within 1.5x of the best flash option and far
        below any disk."""
        card = mac_results["intel-datasheet"].energy_j
        cheapest_flash = min(
            mac_results["sdp5-datasheet"].energy_j,
            mac_results["sdp10-measured"].energy_j,
        )
        assert card <= cheapest_flash * 1.5
        assert card < mac_results["cu140-datasheet"].energy_j / 4


class TestResponseClaims:
    def test_flash_disk_reads_3_to_6x_faster_than_disk(self, mac_results):
        disk = mac_results["cu140-datasheet"].read_response.mean_s
        flash_disk = mac_results["sdp5-datasheet"].read_response.mean_s
        assert disk / flash_disk > 3

    def test_card_reads_fastest(self, mac_results):
        card = mac_results["intel-datasheet"].read_response.mean_s
        for device, result in mac_results.items():
            if device != "intel-datasheet":
                assert card <= result.read_response.mean_s

    def test_flash_writes_at_least_4x_worse_than_disk(self, mac_results):
        """Section 7: flash-disk mean write response 'a minimum of four
        times worse' than the disk with its SRAM buffer."""
        disk = mac_results["cu140-datasheet"].write_response.mean_s
        flash_disk = mac_results["sdp5-datasheet"].write_response.mean_s
        assert flash_disk / disk > 4

    def test_disk_max_response_dominated_by_spin_cycle(self, mac_results):
        """Table 4: maximum disk responses run to seconds (spin-up after
        waiting out an uninterruptible spin-down)."""
        disk = mac_results["cu140-datasheet"]
        assert disk.read_response.max_s > 0.9

    def test_flash_max_response_below_disk_max(self, mac_results):
        card = mac_results["intel-datasheet"]
        disk = mac_results["cu140-datasheet"]
        assert card.read_response.max_s < disk.read_response.max_s


class TestUtilizationClaims:
    """Section 5.2 / Figure 2: high utilization costs energy, time, wear."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.exp_fig2 import fixed_capacity_bytes

        trace = trace_for("mac", SCALE)
        segment = 128 * 1024
        capacity = fixed_capacity_bytes(trace, segment, 0.40)
        results = {}
        for utilization in (0.40, 0.95):
            config = SimulationConfig(
                device="intel-datasheet",
                flash_capacity_bytes=capacity,
                flash_utilization=utilization,
                segment_bytes=segment,
            )
            results[utilization] = simulate(trace, config)
        return results

    def test_energy_rises_with_utilization(self, sweep):
        assert sweep[0.95].energy_j > sweep[0.40].energy_j * 1.2

    def test_cleaning_rises_with_utilization(self, sweep):
        assert (
            sweep[0.95].device_stats["blocks_copied"]
            > sweep[0.40].device_stats["blocks_copied"]
        )

    def test_wear_rises_with_utilization(self, sweep):
        assert sweep[0.95].wear.max_erasures >= 2 * sweep[0.40].wear.max_erasures

    def test_flash_disk_immune_to_utilization(self):
        """Section 5.2: 'the flash disk is unaffected by utilization
        because it does not copy data within the flash'."""
        trace = trace_for("mac", SCALE)
        results = [
            simulate(trace, SimulationConfig(
                device="sdp5-datasheet", flash_utilization=utilization))
            for utilization in (0.40, 0.95)
        ]
        assert results[1].write_response.mean_s == pytest.approx(
            results[0].write_response.mean_s, rel=0.02
        )


class TestSramClaims:
    """Section 5.5 / Figure 5."""

    @pytest.fixture(scope="class")
    def sram_sweep(self):
        trace = trace_for("mac", SCALE)
        results = {}
        for sram in (0, 32 * 1024):
            config = SimulationConfig(device="cu140-datasheet", sram_bytes=sram)
            results[sram] = simulate(trace, config)
        return results

    def test_32kb_buffer_improves_writes_20x(self, sram_sweep):
        no_sram = sram_sweep[0].write_response.mean_s
        with_sram = sram_sweep[32 * 1024].write_response.mean_s
        assert no_sram / with_sram > 10

    def test_buffer_saves_energy(self, sram_sweep):
        assert sram_sweep[32 * 1024].energy_j < sram_sweep[0].energy_j


class TestAsyncErasureClaims:
    """Section 5.3: decoupled erasure on the SDP5A."""

    def test_write_response_improves_by_at_least_half(self):
        trace = trace_for("mac", SCALE)
        sync = simulate(trace, SimulationConfig(device="sdp5-datasheet"))
        async_result = simulate(trace, SimulationConfig(device="sdp5a-datasheet"))
        assert (
            async_result.write_response.mean_s < sync.write_response.mean_s / 2
        )

    def test_energy_impact_minimal(self):
        trace = trace_for("mac", SCALE)
        sync = simulate(trace, SimulationConfig(device="sdp5-datasheet"))
        async_result = simulate(trace, SimulationConfig(device="sdp5a-datasheet"))
        assert async_result.energy_j == pytest.approx(sync.energy_j, rel=0.35)


class TestBatteryClaim:
    def test_22_percent_extension(self, mac_results):
        from repro.analysis.battery import battery_extension

        extension = battery_extension(
            mac_results["cu140-datasheet"],
            mac_results["intel-datasheet"],
            storage_share=0.20,
        )
        assert 0.15 <= extension <= 0.25  # the abstract's 22%
