"""Unit tests for the observability primitives (tracer + registry)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.events import EventTracer, iter_jsonl, read_chrome_layer_totals
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
    sanitize_metric_name,
)


# -- EventTracer ---------------------------------------------------------------


def test_tracer_records_events_in_order():
    tracer = EventTracer(capacity=16)
    tracer.emit("run", 0.0, 0.0, "t|d", 0.0)
    tracer.emit("layer", 1.0, 0.5, "dram", 0.0, 0.25)
    tracer.emit("layer", 1.0, 2.0, "device", 0.0, 1.0)
    assert len(tracer) == 3
    assert [event[0] for event in tracer.events()] == ["run", "layer", "layer"]
    assert tracer.counts() == {"run": 1, "layer": 2}
    assert tracer.layer_latency_totals() == {"dram": 0.5, "device": 2.0}


def test_tracer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)


@given(
    capacity=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=0, max_value=300),
)
def test_ring_never_exceeds_bound(capacity, n):
    """The buffer length can never exceed the configured capacity."""
    tracer = EventTracer(capacity=capacity)
    for index in range(n):
        tracer.emit("request", float(index), 0.0, "read")
        assert len(tracer) <= capacity
    assert tracer.emitted == n
    assert tracer.dropped == max(0, n - capacity)
    assert len(tracer) == min(n, capacity)
    # Oldest events are the ones evicted.
    first = next(tracer.events(), None)
    if first is not None:
        assert first[1] == float(max(0, n - capacity))


def test_rollback_discards_past_the_mark():
    tracer = EventTracer()
    tracer.emit("run", 0.0, 0.0, "t|d", 0.0)
    mark = tracer.emitted
    tracer.emit("layer", 0.0, 1.0, "dram")
    tracer.emit("layer", 0.0, 2.0, "device")
    removed = tracer.rollback(mark)
    assert removed == 2
    assert tracer.emitted == mark
    assert tracer.counts() == {"run": 1}
    # A second mark/rollback pair composes.
    tracer.emit("layer", 0.0, 3.0, "sram")
    tracer.rollback(mark)
    assert tracer.counts() == {"run": 1}


def test_layer_totals_scoped_to_a_run():
    tracer = EventTracer()
    tracer.emit("run", 0.0, 0.0, "a|d", 0.0)
    tracer.emit("layer", 0.0, 1.0, "device")
    tracer.emit("run", 0.0, 0.0, "b|d", 1.0)
    tracer.emit("layer", 0.0, 4.0, "device")
    assert tracer.layer_latency_totals(since_run=0) == {"device": 1.0}
    assert tracer.layer_latency_totals(since_run=1) == {"device": 4.0}
    assert tracer.layer_latency_totals() == {"device": 5.0}


def test_jsonl_round_trip(tmp_path):
    tracer = EventTracer()
    tracer.emit("run", 0.0, 0.0, "mac|disk", 0.0)
    tracer.emit("layer", 0.125, 0.25, "dram", 0.0, 0.5)
    tracer.emit("cache", 0.125, 0.0, "dram", 3, 1)
    tracer.emit("spin_up", 1.0, 2.5, "disk")
    path = tracer.write_jsonl(tmp_path / "events.jsonl")
    records = list(iter_jsonl(path))
    assert [r["kind"] for r in records] == ["run", "layer", "cache", "spin_up"]
    assert records[1] == {"kind": "layer", "t0_s": 0.125, "name": "dram",
                          "latency_s": 0.25, "energy_j": 0.5}
    assert records[2] == {"kind": "cache", "t0_s": 0.125, "name": "dram",
                          "hits": 3, "misses": 1}
    assert records[3]["dur_s"] == 2.5


def test_chrome_export_round_trips_json(tmp_path):
    tracer = EventTracer()
    tracer.emit("run", 0.0, 0.0, "mac|disk", 0.0)
    tracer.emit("request", 0.0, 1.5, "write")
    tracer.emit("layer", 0.0, 1.0, "device", 0.0, 2.0)
    tracer.emit("cleaning", 0.5, 0.25, "flash")
    path = tracer.write_chrome(tmp_path / "trace.json")
    data = json.loads(path.read_text())  # must parse cleanly
    assert data["otherData"]["emitted"] == 4
    events = data["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    # One process track per run, µs timestamps, exact args.
    assert all(e["pid"] == 1 for e in spans)
    layer = next(e for e in spans if e["cat"] == "layer")
    assert layer["name"] == "device"
    assert layer["dur"] == 1.0 * 1e6
    assert layer["args"] == {"latency_s": 1.0, "energy_j": 2.0}
    device = next(e for e in spans if e["cat"] == "cleaning")
    assert device["args"]["device"] == "flash"
    assert read_chrome_layer_totals(path) == [{"device": 1.0}]


# -- metrics instruments -------------------------------------------------------


def test_counter_accumulates_and_rejects_negatives():
    counter = Counter("ops_total")
    counter.inc()
    counter.inc(2.0)
    assert counter.sample() == 3.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    counter.reset()
    assert counter.sample() == 0.0


def test_gauge_reads_bound_callable():
    state = {"value": 5.0}
    gauge = Gauge("queue", fn=lambda: state["value"])
    assert gauge.sample() == 5.0
    state["value"] = 7.0
    assert gauge.sample() == 7.0
    gauge.fn = None
    gauge.set(1.5)
    assert gauge.sample() == 1.5


def test_histogram_buckets_and_sample():
    hist = Histogram("resp", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 100.0):
        hist.observe(value)
    sample = hist.sample()
    assert sample["count"] == 4
    assert sample["sum"] == 105.0
    assert sample["counts"] == [1, 1, 1, 1]  # <=1, <=2, <=4, +Inf


def test_exponential_bounds():
    bounds = exponential_bounds(1.0, 2.0, 4)
    assert bounds == (1.0, 2.0, 4.0, 8.0)


def test_sanitize_metric_name():
    assert sanitize_metric_name("ok_name") == "ok_name"
    assert sanitize_metric_name("bad-name.1") == "bad_name_1"


# -- MetricsRegistry -----------------------------------------------------------


def test_registry_dedupes_by_name_and_rejects_kind_change():
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    assert registry.counter("ops") is counter
    with pytest.raises(ValueError):
        registry.gauge("ops")


def test_registry_samples_on_the_op_interval():
    registry = MetricsRegistry(sample_interval_ops=4)
    counter = registry.counter("ops")
    taken = 0
    for op in range(10):
        counter.inc()
        taken += registry.maybe_sample(float(op))
    assert taken == 2  # after ops 4 and 8
    series = registry.to_json_dict()["series"]
    assert [row["t_s"] for row in series] == [3.0, 7.0]
    assert [row["ops"] for row in series] == [4.0, 8.0]


def test_registry_series_is_bounded():
    registry = MetricsRegistry(sample_interval_ops=1, max_samples=3)
    for op in range(10):
        registry.maybe_sample(float(op))
    data = registry.to_json_dict()
    assert len(data["series"]) == 3
    assert data["samples_dropped"] == 7
    assert [row["t_s"] for row in data["series"]] == [7.0, 8.0, 9.0]


def test_registry_reset_keeps_gauge_bindings():
    registry = MetricsRegistry()
    registry.counter("ops").inc(5)
    registry.gauge("queue", fn=lambda: 2.0)
    registry.force_sample(1.0)
    registry.reset()
    assert registry.to_json_dict()["series"] == []
    assert registry.get("ops").sample() == 0.0
    assert registry.get("queue").sample() == 2.0  # fn survives reset


def test_registry_json_export(tmp_path):
    registry = MetricsRegistry(sample_interval_ops=1)
    registry.counter("ops", "operations").inc(3)
    registry.force_sample(0.5)
    path = registry.write_json(tmp_path / "metrics.json")
    data = json.loads(path.read_text())
    assert data["instruments"]["ops"]["kind"] == "counter"
    assert data["series"][0]["ops"] == 3.0


def test_prometheus_exposition_format(tmp_path):
    registry = MetricsRegistry()
    registry.counter("ops_total", "operations").inc(3)
    registry.gauge("queue_s", "queue depth", fn=lambda: 0.5)
    hist = registry.histogram("resp_s", (1.0, 2.0), "responses")
    hist.observe(0.5)
    hist.observe(1.5)
    hist.observe(9.0)
    text = registry.to_prometheus()
    lines = text.splitlines()
    assert "# HELP repro_ops_total operations" in lines
    assert "# TYPE repro_ops_total counter" in lines
    assert "repro_ops_total 3" in lines
    assert "repro_queue_s 0.5" in lines
    # Histogram buckets are cumulative and end with +Inf == _count.
    assert 'repro_resp_s_bucket{le="1"} 1' in lines
    assert 'repro_resp_s_bucket{le="2"} 2' in lines
    assert 'repro_resp_s_bucket{le="+Inf"} 3' in lines
    assert "repro_resp_s_count 3" in lines
    assert "repro_resp_s_sum 11" in lines
    path = registry.write_prometheus(tmp_path / "m.prom")
    assert path.read_text() == text


# -- Histogram quantiles -------------------------------------------------------


def test_histogram_quantile_interpolates_within_bucket():
    hist = Histogram("resp_s", (1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 2.5, 3.5):
        hist.observe(value)
    # rank 2 of 4 falls exactly at the (1, 2] bucket's upper edge.
    assert hist.quantile(0.5) == 2.0
    # p25 lands mid-way through the first bucket (interpolated from 0).
    assert hist.quantile(0.25) == 1.0
    # p100 is the last finite bound even though 3.5 < 4.0.
    assert hist.quantile(1.0) == 4.0


def test_histogram_quantile_empty_and_bounds():
    hist = Histogram("resp_s", (1.0, 2.0))
    assert hist.quantile(0.5) is None
    assert hist.quantiles() == {"p50": None, "p90": None, "p99": None}
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_quantile_tail_clamps_to_last_bound():
    hist = Histogram("resp_s", (1.0, 2.0))
    hist.observe(100.0)  # lands in the +Inf bucket
    assert hist.quantile(0.5) == 2.0


def test_histogram_quantiles_in_json_export():
    registry = MetricsRegistry()
    hist = registry.histogram("resp_s", (1.0, 2.0, 4.0), "responses")
    for value in (0.5, 1.5, 2.5, 3.5):
        hist.observe(value)
    entry = registry.to_json_dict()["instruments"]["resp_s"]
    assert entry["quantiles"]["p50"] == hist.quantile(0.5)
    assert set(entry["quantiles"]) == {"p50", "p90", "p99"}


def test_histogram_quantiles_in_prometheus_summary_form():
    registry = MetricsRegistry()
    hist = registry.histogram("resp_s", (1.0, 2.0, 4.0), "responses")
    for value in (0.5, 1.5, 2.5, 3.5):
        hist.observe(value)
    lines = registry.to_prometheus().splitlines()
    assert "# TYPE repro_resp_s_quantiles summary" in lines
    assert 'repro_resp_s_quantiles{quantile="0.5"} 2' in lines
    assert any(l.startswith('repro_resp_s_quantiles{quantile="0.99"} ')
               for l in lines)
    assert "repro_resp_s_quantiles_count 4" in lines
    # An empty histogram exports buckets but no summary block.
    empty = MetricsRegistry()
    empty.histogram("idle_s", (1.0,), "idle")
    assert "_quantiles" not in empty.to_prometheus()


@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_histogram_quantile_within_observed_range(values, q):
    hist = Histogram("resp_s", exponential_bounds(0.01, 2.0, 12))
    for value in values:
        hist.observe(value)
    estimate = hist.quantile(q)
    # The bucket model never reports beyond the last finite bound and
    # never goes negative.
    assert 0.0 <= estimate <= hist.bounds[-1]
