"""The LayerStack request path: attribution, hooks, and the satellite
fixes (hierarchy-wide latest_time, all-warm measurement windows, and
power-loss ordering on the hook bus)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.hierarchy import build_hierarchy
from repro.core.simulator import Simulator, simulate
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.traces.filemap import FileMapper
from repro.traces.synthetic import SyntheticWorkload
from repro.units import KB, MB


def _hierarchy(config: SimulationConfig, injector: FaultInjector | None = None):
    return build_hierarchy(config, 4096, 4096, injector=injector)


# -- latest_time() must see every layer's clock ---------------------------------------


def test_latest_time_includes_dram_clock():
    hierarchy = _hierarchy(
        SimulationConfig(device="cu140-datasheet", dram_bytes=2 * MB, sram_bytes=0)
    )
    # Only the cache clock moves: the device frontier stays at zero, so the
    # pre-refactor device-only latest_time() would report 0.0 here.
    hierarchy.stack.layer("dram").cache.advance(123.0)
    assert hierarchy.latest_time() == 123.0


def test_latest_time_includes_sram_clock():
    hierarchy = _hierarchy(
        SimulationConfig(device="cu140-datasheet", dram_bytes=0, sram_bytes=32 * KB)
    )
    hierarchy.stack.layer("sram").buffer.advance(77.5)
    assert hierarchy.latest_time() == 77.5


def test_latest_time_tracks_device_frontier():
    hierarchy = _hierarchy(
        SimulationConfig(device="intel-datasheet", dram_bytes=2 * MB)
    )
    hierarchy.advance(50.0)
    assert hierarchy.latest_time() >= 50.0


# -- all-warm traces measure an empty window ------------------------------------------


def test_fully_warm_trace_reports_zero_duration():
    trace = SyntheticWorkload().generate(n_ops=300, seed=3)
    config = SimulationConfig(device="intel-datasheet")
    # warm_fraction is validated < 1.0 at construction; force the edge the
    # simulator must still survive (warm_count == len(ops)).
    object.__setattr__(config, "warm_fraction", 1.0)
    result = Simulator(config).run(trace)
    assert result.duration_s == 0.0
    assert result.n_reads == 0
    assert result.n_writes == 0
    assert result.overall_response.count == 0


# -- per-layer attribution sums to the run totals --------------------------------------


_BREAKDOWN_CONFIGS = st.fixed_dictionaries(
    {
        "device": st.sampled_from(
            ["cu140-datasheet", "sdp5-datasheet", "intel-datasheet",
             "intel-series2plus"]
        ),
        "dram_bytes": st.sampled_from([0, 256 * KB, 2 * MB]),
        "sram_bytes": st.sampled_from([0, 8 * KB, 32 * KB]),
        "spin_down_timeout_s": st.sampled_from([None, 1.0, 5.0]),
        "write_back": st.booleans(),
    }
)


@settings(max_examples=20, deadline=None)
@given(options=_BREAKDOWN_CONFIGS)
def test_layer_breakdown_sums_to_totals(options):
    trace = SyntheticWorkload().generate(n_ops=300, seed=5)
    result = simulate(trace, SimulationConfig(**options))
    breakdown = result.layer_breakdown
    assert breakdown, "every simulation must report a layer breakdown"
    assert "device" in breakdown

    # Latency components sum to the measured foreground response time.
    latency_sum = sum(cell["latency_s"] for cell in breakdown.values())
    overall = result.overall_response
    assert latency_sum == pytest.approx(
        overall.mean_s * overall.count, rel=1e-6, abs=1e-9
    )
    # Energy components sum to the reported run total.
    energy_sum = sum(cell["energy_j"] for cell in breakdown.values())
    assert energy_sum == pytest.approx(result.energy_j, rel=1e-9, abs=1e-9)
    for cell in breakdown.values():
        assert cell["latency_s"] >= 0.0
        assert cell["energy_j"] >= 0.0


def test_response_attribution_matches_response_time():
    trace = SyntheticWorkload().generate(n_ops=200, seed=8)
    mapper = FileMapper(trace.block_size)
    ops = mapper.translate_all(trace)
    hierarchy = build_hierarchy(
        SimulationConfig(device="intel-datasheet", dram_bytes=256 * KB),
        trace.block_size,
        max(1, mapper.high_water_blocks),
    )
    for op in ops:
        response = hierarchy.submit(op)
        assert response.attributed_latency_s == pytest.approx(
            response.response_s, rel=1e-9, abs=1e-12
        )


# -- power losses fire strictly before the request that would overtake them -----------


def test_power_losses_fire_before_the_later_request():
    trace = SyntheticWorkload().generate(n_ops=200, seed=9)
    mapper = FileMapper(trace.block_size)
    ops = mapper.translate_all(trace)
    # A loss strictly between two operations, and one after the trace ends.
    split = next(
        index for index in range(1, len(ops)) if ops[index].time > ops[index - 1].time
    )
    mid_loss = (ops[split - 1].time + ops[split].time) / 2.0
    late_loss = trace.duration + 100.0
    plan = FaultPlan(seed=1, power_loss_times=(mid_loss, late_loss))
    assert plan.enabled
    injector = FaultInjector(plan)
    hierarchy = build_hierarchy(
        SimulationConfig(
            device="intel-datasheet", dram_bytes=256 * KB, fault_plan=plan
        ),
        trace.block_size,
        max(1, mapper.high_water_blocks),
        injector=injector,
    )
    stack = hierarchy.stack

    events: list[tuple[str, float]] = []
    # Same wiring as the simulator: the loss-firing subscriber runs first,
    # so a crash always lands before the submit that triggered the check.
    hierarchy.hooks.on_submit(
        lambda request: stack.fire_pending_power_losses(request.time)
    )
    hierarchy.hooks.on_submit(lambda request: events.append(("submit", request.time)))
    hierarchy.hooks.on_crash(lambda at, recovered_at: events.append(("crash", at)))

    for op in ops:
        stack.submit(op)
    # Losses scheduled after the last request still happen (the drain).
    stack.fire_pending_power_losses(float("inf"))

    crashes = [event for event in events if event[0] == "crash"]
    assert crashes == [("crash", mid_loss), ("crash", late_loss)]
    # The mid-trace crash precedes every submit at or after the loss time.
    crash_index = events.index(("crash", mid_loss))
    later_submits = [
        index
        for index, event in enumerate(events)
        if event[0] == "submit" and event[1] >= mid_loss
    ]
    assert later_submits and crash_index < min(later_submits)
    # The post-trace loss fired after every submitted request.
    assert events[-1] == ("crash", late_loss)
    assert hierarchy.reliability_snapshot().power_losses == 2


def test_simulator_fires_post_trace_power_losses():
    trace = SyntheticWorkload().generate(n_ops=300, seed=4)
    plan = FaultPlan(seed=2, power_loss_times=(trace.duration + 50.0,))
    result = simulate(
        trace, SimulationConfig(device="intel-datasheet", fault_plan=plan)
    )
    assert result.reliability is not None
    assert result.reliability.power_losses == 1
