"""Storage-hierarchy dispatch: cache interplay, SRAM semantics, assembly."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.hierarchy import StorageHierarchy, build_hierarchy
from repro.devices.disk import DiskState, MagneticDisk
from repro.devices.flashcard import FlashCard
from repro.devices.flashdisk import FlashDisk
from repro.traces.record import BlockOp, Operation
from repro.units import KB


def op(time, kind, blocks, file_id=1, block_bytes=KB):
    return BlockOp(
        time=time, op=kind, file_id=file_id,
        blocks=tuple(blocks), size=len(blocks) * block_bytes,
    )


def build(device="cu140-datasheet", **overrides) -> StorageHierarchy:
    config = SimulationConfig(device=device, **overrides)
    return build_hierarchy(config, KB, dataset_blocks=4096)


class TestAssembly:
    def test_disk_gets_sram(self):
        hierarchy = build("cu140-datasheet")
        assert hierarchy.sram is not None
        assert isinstance(hierarchy.device, MagneticDisk)

    def test_flash_has_no_sram_by_default(self):
        hierarchy = build("sdp5-datasheet")
        assert hierarchy.sram is None
        assert isinstance(hierarchy.device, FlashDisk)

    def test_flash_sram_ablation_flag(self):
        hierarchy = build("sdp5-datasheet", sram_on_flash=True)
        assert hierarchy.sram is not None

    def test_card_built_with_preload_at_utilization(self):
        hierarchy = build("intel-datasheet", flash_utilization=0.8)
        card = hierarchy.device
        assert isinstance(card, FlashCard)
        assert card.utilization == pytest.approx(0.8, abs=0.05)

    def test_zero_dram_disables_cache(self):
        hierarchy = build("cu140-datasheet", dram_bytes=0)
        assert hierarchy.dram is None

    def test_flash_capacity_respects_dataset(self):
        hierarchy = build("intel-datasheet", flash_utilization=0.9)
        card = hierarchy.device
        assert card.capacity_bytes >= 4096 * KB


class TestReadPath:
    def test_cache_hit_never_touches_device(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        reads_before = hierarchy.device.reads
        response = hierarchy.read(op(10.0, Operation.READ, [1]))
        assert hierarchy.device.reads == reads_before
        assert response < 0.001  # DRAM speed

    def test_cache_miss_reads_device(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.read(op(0.0, Operation.READ, [7]))
        assert hierarchy.device.reads >= 1

    def test_miss_installs_block(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.read(op(0.0, Operation.READ, [7]))
        second = hierarchy.read(op(10.0, Operation.READ, [7]))
        assert second < 0.001

    def test_no_dram_always_hits_device(self):
        hierarchy = build("cu140-datasheet", dram_bytes=0)
        hierarchy.read(op(0.0, Operation.READ, [7]))
        hierarchy.read(op(10.0, Operation.READ, [7]))
        assert hierarchy.device.reads == 2

    def test_read_served_from_sram_when_buffered(self):
        hierarchy = build("cu140-datasheet", dram_bytes=0)
        # Let the disk sleep, then write (absorbed by SRAM).
        hierarchy.advance(100.0)
        hierarchy.write(op(100.0, Operation.WRITE, [3]))
        reads_before = hierarchy.device.reads
        response = hierarchy.read(op(101.0, Operation.READ, [3]))
        assert hierarchy.device.reads == reads_before  # no spin-up
        assert response < 0.001


class TestWritePath:
    def test_write_absorbed_by_sram_when_disk_asleep(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.advance(100.0)  # disk spins down
        assert hierarchy.device.state is DiskState.SLEEPING
        response = hierarchy.write(op(100.0, Operation.WRITE, [1]))
        assert response < 0.001
        assert hierarchy.device.state is DiskState.SLEEPING  # still asleep
        assert hierarchy.sram.dirty_count == 1

    def test_write_passes_through_while_spinning(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.write(op(0.0, Operation.WRITE, [1]))  # disk starts spinning
        assert hierarchy.sram.dirty_count == 0  # drained immediately

    def test_large_write_bypasses_sram(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.advance(100.0)
        big = list(range(64))  # 64 KB > the 32 KB buffer
        response = hierarchy.write(op(100.0, Operation.WRITE, big))
        assert hierarchy.device.writes >= 1
        assert response > 1.0  # paid the spin-up

    def test_buffer_full_forces_synchronous_flush(self):
        hierarchy = build("cu140-datasheet", dram_bytes=0)
        hierarchy.advance(100.0)
        clock = 100.0
        worst = 0.0
        for index in range(40):  # 40 x 1 KB > 32 KB buffer
            response = hierarchy.write(op(clock, Operation.WRITE, [index]))
            worst = max(worst, response)
            clock += 0.001
        assert worst > 1.0  # one write waited for spin-up + flush
        assert hierarchy.sram.sync_flushes >= 1

    def test_no_sram_writes_go_to_device(self):
        hierarchy = build("cu140-datasheet", sram_bytes=0)
        assert hierarchy.sram is None
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        assert hierarchy.device.writes == 1

    def test_stale_sram_copy_invalidated_on_bypass(self):
        hierarchy = build("cu140-datasheet", dram_bytes=0)
        hierarchy.advance(100.0)
        hierarchy.write(op(100.0, Operation.WRITE, [1]))  # buffered
        big = [1] + list(range(100, 163))
        hierarchy.write(op(101.0, Operation.WRITE, big))  # bypass, newer data
        assert not hierarchy.sram.contains(1)


class TestWriteBack:
    def test_write_back_defers_device_writes(self):
        hierarchy = build("cu140-datasheet", write_back=True, sram_bytes=0)
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        assert hierarchy.device.writes == 0

    def test_finalize_flushes_dirty(self):
        hierarchy = build("cu140-datasheet", write_back=True, sram_bytes=0)
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        hierarchy.finalize(10.0)
        assert hierarchy.device.writes == 1


class TestDelete:
    def test_delete_invalidates_everywhere(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.advance(100.0)
        hierarchy.write(op(100.0, Operation.WRITE, [5]))
        hierarchy.delete(op(101.0, Operation.DELETE, [5]))
        assert not hierarchy.sram.contains(5)
        response = hierarchy.read(op(102.0, Operation.READ, [5]))
        assert hierarchy.device.reads >= 1  # not served from caches


class TestQueueReporting:
    def test_queue_wait_excluded_by_default(self):
        hierarchy = build("sdp5-datasheet", dram_bytes=0)
        first = hierarchy.write(op(0.0, Operation.WRITE, list(range(32))))
        second = hierarchy.read(op(0.0, Operation.READ, [100]))
        # The read arrived during the long write but reports service only.
        assert second < first

    def test_queue_wait_included_when_asked(self):
        config = SimulationConfig(
            device="sdp5-datasheet", dram_bytes=0, response_includes_queueing=True
        )
        hierarchy = build_hierarchy(config, KB, dataset_blocks=4096)
        first = hierarchy.write(op(0.0, Operation.WRITE, list(range(32))))
        second = hierarchy.read(op(0.0, Operation.READ, [100]))
        assert second > first * 0.9  # includes the wait behind the write


class TestEnergyAggregation:
    def test_breakdown_has_all_components(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        hierarchy.finalize(10.0)
        breakdown = hierarchy.energy_breakdown()
        assert "device" in breakdown
        assert "dram" in breakdown
        assert "sram" in breakdown
        assert hierarchy.total_energy_j == pytest.approx(
            sum(sum(b.values()) for b in breakdown.values())
        )

    def test_reset_accounting_zeroes_everything(self):
        hierarchy = build("cu140-datasheet")
        hierarchy.write(op(0.0, Operation.WRITE, [1]))
        hierarchy.finalize(10.0)
        hierarchy.reset_accounting()
        assert hierarchy.total_energy_j == 0.0
