"""The zero-allocation fast path is an *optimisation*, not a behaviour.

``Simulator.run`` takes ``batched=True`` by default (compiled trace,
pooled Request/Response, compiled hooks); ``batched=False`` keeps the
original one-BlockOp-at-a-time reference path.  Everything here pins the
two paths bit-for-bit against each other — ``float.hex()`` comparisons,
no tolerances — across the paper's workloads and one device per class,
and then checks the pooling machinery cannot leak state between
operations or runs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.request import (
    REQUEST_POOL,
    Request,
    RequestKind,
    RequestPool,
    Response,
    intern_layer,
)
from repro.core.simulator import simulate
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import workload_by_name
from tests.golden.generate_equivalence_golden import DEVICES, WORKLOADS, hexify


def _trace(workload: str, n_ops: int, seed: int):
    if workload == "synth":
        return SyntheticWorkload().generate(n_ops=n_ops, seed=seed)
    return workload_by_name(workload).generate(seed=seed, n_ops=n_ops)


def _snapshot(trace, config, *, batched: bool) -> dict:
    result = simulate(trace, config, batched=batched)
    return {
        "duration_s": hexify(result.duration_s),
        "energy_j": hexify(result.energy_j),
        "energy_breakdown": hexify(result.energy_breakdown),
        "read_mean_s": hexify(result.read_response.mean_s),
        "read_max_s": hexify(result.read_response.max_s),
        "write_mean_s": hexify(result.write_response.mean_s),
        "write_p95_s": hexify(result.write_response.p95_s),
        "overall_std_s": hexify(result.overall_response.std_s),
        "n_reads": result.n_reads,
        "n_writes": result.n_writes,
        "n_deletes": result.n_deletes,
        "dram_hit_rate": hexify(result.dram_hit_rate),
        "device_stats": hexify(result.device_stats),
        "layer_breakdown": hexify(result.layer_breakdown),
    }


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("device", DEVICES)
def test_batched_path_is_bit_identical(workload, device):
    """4 workloads x 3 device families: fast path == reference path."""
    trace = _trace(workload, n_ops=800, seed=7)
    config = SimulationConfig(device=device)
    fast = _snapshot(trace, config, batched=True)
    slow = _snapshot(trace, config, batched=False)
    for key in fast:
        assert fast[key] == slow[key], f"{workload}/{device}: {key!r} diverged"


@settings(max_examples=12, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    device=st.sampled_from(DEVICES),
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=50, max_value=400),
    sram_kb=st.sampled_from([0, 4, 32]),
    write_back=st.booleans(),
)
def test_batched_path_is_bit_identical_property(
    workload, device, seed, n_ops, sram_kb, write_back
):
    """No corner of the config space may separate the two paths."""
    trace = _trace(workload, n_ops=n_ops, seed=seed)
    config = SimulationConfig(
        device=device, sram_bytes=sram_kb * 1024, write_back=write_back
    )
    fast = _snapshot(trace, config, batched=True)
    slow = _snapshot(trace, config, batched=False)
    assert fast == slow


def test_repeated_batched_runs_are_identical():
    """Pool reuse across runs must not leak state into later results."""
    trace = _trace("mac", n_ops=600, seed=3)
    config = SimulationConfig(device="intel-datasheet")
    first = _snapshot(trace, config, batched=True)
    second = _snapshot(trace, config, batched=True)
    assert first == second


def test_pool_acquire_overwrites_every_field():
    pool = RequestPool()
    stale = pool.acquire(RequestKind.WRITE, 9.0, (1, 2, 3), 4096, 17,
                         background=True)
    pool.release(stale)
    fresh = pool.acquire(RequestKind.READ, 1.0, (5,), 512, 2)
    assert fresh is stale  # recycled, not reallocated
    assert (fresh.kind, fresh.time, fresh.blocks, fresh.size, fresh.file_id,
            fresh.background) == (RequestKind.READ, 1.0, (5,), 512, 2, False)


def test_pool_release_drops_block_references():
    pool = RequestPool()
    request = pool.acquire(RequestKind.WRITE, 0.0, (1, 2, 3), 1536, 1)
    pool.release(request)
    assert request.blocks == ()  # no tuple kept alive while parked


def test_response_reset_clears_attribution_between_ops():
    """``run_batch`` recycles one Response; reset must scrub it fully."""
    a = intern_layer("dram")
    b = intern_layer("device")
    request = Request(RequestKind.WRITE, 0.0, (1,), 512, 1)
    response = Response(request, issued_at=0.0)
    response.attribute_id(a, 1.5, 2.5)
    response.attribute_id(b, 3.5, 4.5)
    assert response.attributed_latency_s == 5.0

    other = Request(RequestKind.READ, 7.0, (2,), 512, 2)
    response.reset(other, issued_at=7.0)
    assert response.request is other
    assert response.issued_at == 7.0
    assert response.completed_at == 7.0
    assert response.attribution == {}
    assert response.attributed_latency_s == 0.0
    assert response.attributed_energy_j == 0.0

    # And the zeroed slots really are zero, not merely un-listed.
    response.attribute_id(a, 0.25, 0.125)
    assert response.attribution == {"dram": (0.25, 0.125)}


def test_global_pool_round_trips():
    depth = len(REQUEST_POOL)
    request = REQUEST_POOL.acquire(RequestKind.FLUSH, 0.0, (), 0, -1)
    assert len(REQUEST_POOL) == max(0, depth - 1)
    REQUEST_POOL.release(request)
    assert len(REQUEST_POOL) == max(1, depth)
