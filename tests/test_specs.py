"""Device parameter registry: fidelity to the paper's tables."""

import pytest

from repro.devices.specs import (
    CU140_DATASHEET,
    DEVICE_SPECS,
    INTEL_DATASHEET,
    INTEL_SERIES2PLUS,
    NEC_DRAM,
    NEC_SRAM,
    SDP5A_DATASHEET,
    SDP5_DATASHEET,
    SDP10_DATASHEET,
    device_spec,
    memory_spec,
)
from repro.errors import ConfigurationError
from repro.units import KB, kbps


def test_registry_names_match_keys():
    for name, spec in DEVICE_SPECS.items():
        assert spec.name == name


def test_expected_devices_present():
    for name in (
        "cu140-datasheet", "cu140-measured", "kh-datasheet",
        "sdp10-datasheet", "sdp10-measured", "sdp5-datasheet",
        "sdp5a-datasheet", "intel-datasheet", "intel-measured",
        "intel-series2plus",
    ):
        assert name in DEVICE_SPECS


def test_unknown_device_raises():
    with pytest.raises(ConfigurationError):
        device_spec("st506")


def test_unknown_memory_raises():
    with pytest.raises(ConfigurationError):
        memory_spec("core-rope")


class TestPaperTable2Values:
    def test_cu140_random_access_is_25_7ms(self):
        assert CU140_DATASHEET.random_access_s == pytest.approx(0.0257)

    def test_cu140_bandwidth(self):
        assert CU140_DATASHEET.read_bandwidth_bps == kbps(2125)

    def test_cu140_powers(self):
        assert CU140_DATASHEET.active_power_w == 1.75
        assert CU140_DATASHEET.idle_power_w == 0.7
        assert CU140_DATASHEET.spin_up_power_w == 3.0

    def test_cu140_spin_up_time(self):
        assert CU140_DATASHEET.spin_up_s == 1.0

    def test_sdp10_rates(self):
        assert SDP10_DATASHEET.access_latency_s == pytest.approx(0.0015)
        assert SDP10_DATASHEET.read_bandwidth_bps == kbps(600)
        assert SDP10_DATASHEET.write_bandwidth_bps == kbps(50)

    def test_intel_rates(self):
        assert INTEL_DATASHEET.read_bandwidth_bps == kbps(9765)
        assert INTEL_DATASHEET.write_bandwidth_bps == kbps(214)
        assert INTEL_DATASHEET.erase_time_s == 1.6
        assert INTEL_DATASHEET.segment_bytes == 128 * KB

    def test_intel_endurance(self):
        assert INTEL_DATASHEET.endurance_cycles == 100_000

    def test_series2plus_improvements(self):
        assert INTEL_SERIES2PLUS.erase_time_s == pytest.approx(0.3)
        assert INTEL_SERIES2PLUS.endurance_cycles == 1_000_000

    def test_sdp5a_async_rates(self):
        # Section 5.3: erase 150 KB/s, pre-erased writes 400 KB/s.
        assert SDP5A_DATASHEET.erase_bandwidth_bps == kbps(150)
        assert SDP5A_DATASHEET.pre_erased_write_bandwidth_bps == kbps(400)
        assert SDP5A_DATASHEET.supports_async_erase
        assert not SDP5_DATASHEET.supports_async_erase

    def test_flash_idle_ordering(self):
        # Solved from the paper's hp totals: the card idles below the disk
        # emulator (DESIGN.md / specs.py rationale).
        assert INTEL_DATASHEET.idle_power_w < SDP5_DATASHEET.idle_power_w


class TestAssumptionsDeclared:
    def test_every_spec_declares_assumptions_or_is_pure(self):
        # Any field the paper does not state must be flagged.
        for spec in DEVICE_SPECS.values():
            assert isinstance(spec.assumed, tuple)

    def test_kittyhawk_flags_its_powers(self):
        kh = device_spec("kh-datasheet")
        assert any("power" in note for note in kh.assumed)

    def test_intel_erase_power_flagged(self):
        assert any("erase_power" in note for note in INTEL_DATASHEET.assumed)


class TestMemorySpecs:
    def test_dram_standby_scales_per_byte(self):
        two_mb = NEC_DRAM.standby_power_w_per_byte * 2 * 1024 * 1024
        assert 0.005 < two_mb < 0.05  # ~12 mW for 2 MB

    def test_sram_standby_is_tiny(self):
        one_mb = NEC_SRAM.standby_power_w_per_byte * 1024 * 1024
        assert one_mb < 0.05  # battery-backed retention, not refresh

    def test_copy_bandwidth_defaults_to_host(self):
        assert (
            INTEL_DATASHEET.copy_write_bandwidth_bps
            == INTEL_DATASHEET.write_bandwidth_bps
        )

    def test_measured_card_copies_at_hardware_speed(self):
        measured = device_spec("intel-measured")
        assert measured.copy_write_bandwidth_bps > measured.write_bandwidth_bps
