"""Trace statistics (Table 3 machinery)."""

import math

import pytest

from repro.traces.record import Operation, TraceRecord
from repro.traces.stats import compute_statistics
from repro.traces.trace import Trace
from repro.units import KB


def build_trace():
    records = [
        TraceRecord(time=0.0, op=Operation.WRITE, file_id=1, offset=0, size=2 * KB),
        TraceRecord(time=1.0, op=Operation.READ, file_id=1, offset=0, size=1 * KB),
        TraceRecord(time=3.0, op=Operation.READ, file_id=1, offset=0, size=3 * KB),
        TraceRecord(time=4.0, op=Operation.DELETE, file_id=1),
    ]
    return Trace("stats", records, block_size=KB)


def test_fraction_reads_counts_all_ops():
    stats = compute_statistics(build_trace())
    assert stats.fraction_reads == pytest.approx(2 / 4)


def test_mean_read_blocks():
    stats = compute_statistics(build_trace())
    assert stats.mean_read_blocks == pytest.approx(2.0)  # (1 + 3) / 2


def test_mean_write_blocks():
    stats = compute_statistics(build_trace())
    assert stats.mean_write_blocks == pytest.approx(2.0)


def test_interarrival_mean_max(build=build_trace):
    stats = compute_statistics(build())
    assert stats.interarrival_mean_s == pytest.approx((1 + 2 + 1) / 3)
    assert stats.interarrival_max_s == pytest.approx(2.0)


def test_interarrival_std():
    stats = compute_statistics(build_trace())
    gaps = [1.0, 2.0, 1.0]
    mean = sum(gaps) / 3
    expected = math.sqrt(sum((g - mean) ** 2 for g in gaps) / 3)
    assert stats.interarrival_std_s == pytest.approx(expected)


def test_distinct_kbytes():
    stats = compute_statistics(build_trace())
    assert stats.distinct_kbytes == pytest.approx(3.0)  # blocks 0,1,2 of file 1


def test_duration():
    stats = compute_statistics(build_trace())
    assert stats.duration_s == pytest.approx(4.0)


def test_warm_fraction_drops_leading_records():
    stats = compute_statistics(build_trace(), warm_fraction=0.5)
    assert stats.n_records == 2
    assert stats.n_deletes == 1


def test_unaligned_transfer_block_count():
    records = [
        TraceRecord(time=0.0, op=Operation.READ, file_id=1, offset=512, size=KB),
    ]
    stats = compute_statistics(Trace("u", records, block_size=KB))
    assert stats.mean_read_blocks == pytest.approx(2.0)  # straddles boundary


def test_empty_trace():
    stats = compute_statistics(Trace("empty", [], block_size=KB))
    assert stats.n_records == 0
    assert stats.fraction_reads == 0.0
    assert stats.interarrival_mean_s == 0.0


def test_row_mapping_keys():
    row = compute_statistics(build_trace()).row()
    assert row["trace"] == "stats"
    assert "interarrival_std_s" in row
