"""File-system overhead models: compression, DOS FS, MFFS 2.00."""

import pytest

from repro.devices.disk import MagneticDisk
from repro.devices.flashcard import FlashCard
from repro.devices.flashdisk import FlashDisk
from repro.devices.specs import (
    CU140_DATASHEET,
    INTEL_DATASHEET,
    SDP10_DATASHEET,
)
from repro.devices.spindown import NeverSpinDownPolicy
from repro.fs.compression import (
    DOUBLESPACE,
    STACKER,
    CompressionModel,
    DataKind,
)
from repro.fs.dosfs import DosFileSystem
from repro.fs.mffs import MicrosoftFlashFileSystem
from repro.errors import ConfigurationError
from repro.units import KB, MB


class TestCompressionModel:
    def test_text_halves(self):
        assert DOUBLESPACE.compressed_bytes(4096, DataKind.TEXT) == 2048

    def test_random_incompressible(self):
        assert DOUBLESPACE.compressed_bytes(4096, DataKind.RANDOM) == 4096

    def test_compress_time_positive(self):
        assert DOUBLESPACE.compress_time(4096, DataKind.TEXT) > 0

    def test_random_decompress_is_cheap_copy(self):
        fast = DOUBLESPACE.decompress_time(4096, DataKind.RANDOM)
        slow = DOUBLESPACE.decompress_time(4096, DataKind.TEXT)
        assert fast < slow

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            CompressionModel(name="bad", text_ratio=0.0)

    def test_layer_specific_overheads(self):
        # DoubleSpace's per-file penalty dwarfs Stacker's (Table 1 pattern).
        assert DOUBLESPACE.per_file_overhead_s > STACKER.per_file_overhead_s
        assert STACKER.sync_write_extra_s > 0


def make_dosfs(compression=None):
    disk = MagneticDisk(CU140_DATASHEET, NeverSpinDownPolicy())
    return DosFileSystem(disk, compression=compression)


class TestDosFileSystem:
    def test_write_then_read_roundtrip_latencies(self):
        fs = make_dosfs()
        writes = fs.write_file("a", 8 * KB, 4 * KB)
        reads = fs.read_file("a", 4 * KB)
        assert len(writes) == 2
        assert len(reads) == 2
        assert all(latency > 0 for latency in writes + reads)

    def test_large_files_amortize_open_cost(self):
        fs = make_dosfs()
        start = fs.clock
        fs.write_file("s", 4 * KB, 4 * KB)
        small_throughput = 4 * KB / (fs.clock - start)
        start = fs.clock
        fs.write_file("l", 256 * KB, 4 * KB)
        large_throughput = 256 * KB / (fs.clock - start)
        assert large_throughput > small_throughput * 1.5

    def test_flash_disk_writes_much_slower_than_disk(self):
        disk_fs = make_dosfs()
        flash_fs = DosFileSystem(FlashDisk(SDP10_DATASHEET, block_bytes=512))
        disk_time = sum(disk_fs.write_file("x", 64 * KB, 4 * KB))
        flash_time = sum(flash_fs.write_file("x", 64 * KB, 4 * KB))
        assert flash_time > 3 * disk_time  # 50 KB/s vs 2125 KB/s media

    def test_compressed_small_writes_fast(self):
        plain = make_dosfs()
        compressed = make_dosfs(DOUBLESPACE)
        plain_time = sum(plain.write_file("x", 4 * KB, 4 * KB, DataKind.TEXT))
        compressed_time = sum(
            compressed.write_file("x", 4 * KB, 4 * KB, DataKind.TEXT)
        )
        assert compressed_time < plain_time  # write-behind cache absorbs it

    def test_compressed_large_writes_slower(self):
        plain = make_dosfs()
        compressed = make_dosfs(DOUBLESPACE)
        plain_time = sum(plain.write_file("x", 1 * MB, 4 * KB, DataKind.TEXT))
        compressed_time = sum(
            compressed.write_file("x", 1 * MB, 4 * KB, DataKind.TEXT)
        )
        assert compressed_time > plain_time  # CPU-bound compression

    def test_compressed_read_pays_per_file_penalty(self):
        plain = make_dosfs()
        compressed = make_dosfs(DOUBLESPACE)
        plain.write_file("x", 4 * KB, 4 * KB, DataKind.TEXT)
        compressed.write_file("x", 4 * KB, 4 * KB, DataKind.TEXT)
        compressed.clock = max(compressed.clock, compressed.device.busy_until)
        plain_read = sum(plain.read_file("x", 4 * KB, DataKind.TEXT))
        compressed_read = sum(compressed.read_file("x", 4 * KB, DataKind.TEXT))
        assert compressed_read > plain_read

    def test_op_interface_same_file_avoids_reopen(self):
        fs = make_dosfs()
        first = fs.op_read("f", 0, KB)
        second = fs.op_read("f", KB, KB)
        assert second < first  # no directory lookup, no seek

    def test_op_delete_frees(self):
        fs = make_dosfs()
        fs.op_write("f", 0, 4 * KB)
        fs.op_delete("f")
        assert "f" not in fs._files


def make_mffs(card=None):
    if card is None:
        card = FlashCard(INTEL_DATASHEET, block_bytes=512)
    return MicrosoftFlashFileSystem(card)


class TestMffs:
    def test_write_latency_grows_with_file_offset(self):
        fs = make_mffs()
        latencies = fs.write_file("big", 512 * KB, 4 * KB, DataKind.TEXT)
        first_quarter = sum(latencies[: len(latencies) // 4])
        last_quarter = sum(latencies[-len(latencies) // 4 :])
        assert last_quarter > 2 * first_quarter  # the Figure 1 anomaly

    def test_read_latency_grows_with_offset_too(self):
        fs = make_mffs()
        fs.write_file("big", 512 * KB, 4 * KB, DataKind.TEXT)
        latencies = fs.read_file("big", 4 * KB, DataKind.TEXT)
        assert latencies[-1] > 2 * latencies[0]

    def test_small_file_reads_fast(self):
        fs = make_mffs()
        fs.write_file("small", 4 * KB, 4 * KB, DataKind.RANDOM)
        latency = fs.read_file("small", 4 * KB, DataKind.RANDOM)[0]
        assert latency < 0.010  # Table 1: 645 KB/s class

    def test_compressible_data_writes_faster(self):
        random_fs = make_mffs()
        text_fs = make_mffs()
        random_time = sum(random_fs.write_file("x", 64 * KB, 4 * KB, DataKind.RANDOM))
        text_time = sum(text_fs.write_file("x", 64 * KB, 4 * KB, DataKind.TEXT))
        assert text_time < random_time  # half the blocks to allocate

    def test_cumulative_decay_slows_writes(self):
        fs = make_mffs()
        first = sum(fs.write_file("a", 32 * KB, 4 * KB, DataKind.TEXT))
        for index in range(100):  # pump cumulative bytes through the card
            fs.write_file(f"junk{index}", 32 * KB, 4 * KB, DataKind.TEXT)
        later = sum(fs.write_file("a", 32 * KB, 4 * KB, DataKind.TEXT))
        assert later > first * 1.5

    def test_op_delete_invalidates_card_blocks(self):
        fs = make_mffs()
        fs.op_write("f", 0, 4 * KB)
        live_before = fs.card.live_blocks
        fs.op_delete("f")
        assert fs.card.live_blocks < live_before
