"""OmniBook testbed: Table 1 / Figure 1 / Figure 3 behaviours."""

import pytest

from repro.fs.compression import DataKind
from repro.testbed.omnibook import OmniBook, StorageSetup
from repro.units import KB, MB

#: Table 1 targets in KB/s, keyed by (setup, op, file size, data kind).
PAPER_CELLS = {
    (StorageSetup.CU140, "read", 4 * KB, DataKind.RANDOM): 116,
    (StorageSetup.CU140, "read", 1 * MB, DataKind.RANDOM): 543,
    (StorageSetup.CU140, "write", 4 * KB, DataKind.RANDOM): 76,
    (StorageSetup.CU140, "write", 1 * MB, DataKind.RANDOM): 231,
    (StorageSetup.CU140_COMPRESSED, "write", 4 * KB, DataKind.TEXT): 289,
    (StorageSetup.CU140_COMPRESSED, "write", 1 * MB, DataKind.TEXT): 146,
    (StorageSetup.SDP10, "read", 4 * KB, DataKind.RANDOM): 280,
    (StorageSetup.SDP10, "write", 4 * KB, DataKind.RANDOM): 39,
    (StorageSetup.SDP10, "write", 1 * MB, DataKind.RANDOM): 40,
    (StorageSetup.SDP10_COMPRESSED, "write", 4 * KB, DataKind.TEXT): 225,
    (StorageSetup.INTEL_MFFS, "read", 4 * KB, DataKind.RANDOM): 645,
    (StorageSetup.INTEL_MFFS, "read", 1 * MB, DataKind.RANDOM): 37,
    (StorageSetup.INTEL_MFFS, "write", 4 * KB, DataKind.RANDOM): 43,
    (StorageSetup.INTEL_MFFS, "write", 1 * MB, DataKind.RANDOM): 21,
    (StorageSetup.INTEL_MFFS, "write", 4 * KB, DataKind.TEXT): 83,
}


@pytest.mark.parametrize("key,target", sorted(PAPER_CELLS.items(), key=str))
def test_table1_cell_within_2x(key, target):
    setup, operation, file_bytes, kind = key
    result = OmniBook().run(setup, operation, file_bytes, data_kind=kind)
    assert 0.4 <= result.throughput_kbps / target <= 2.5, (
        f"{key}: {result.throughput_kbps:.1f} KB/s vs paper {target}"
    )


class TestTable1Orderings:
    """The qualitative observations the paper draws from Table 1."""

    def test_disk_best_write_throughput(self):
        disk = OmniBook().run(StorageSetup.CU140, "write", 1 * MB)
        flash_disk = OmniBook().run(StorageSetup.SDP10, "write", 1 * MB)
        card = OmniBook().run(StorageSetup.INTEL_MFFS, "write", 1 * MB)
        assert disk.throughput_kbps > flash_disk.throughput_kbps
        assert disk.throughput_kbps > card.throughput_kbps

    def test_card_best_small_reads(self):
        card = OmniBook().run(StorageSetup.INTEL_MFFS, "read", 4 * KB)
        flash_disk = OmniBook().run(StorageSetup.SDP10, "read", 4 * KB)
        disk = OmniBook().run(StorageSetup.CU140, "read", 4 * KB)
        assert card.throughput_kbps > flash_disk.throughput_kbps
        assert card.throughput_kbps > disk.throughput_kbps

    def test_card_worse_than_flash_disk_for_large_files(self):
        card = OmniBook().run(StorageSetup.INTEL_MFFS, "read", 1 * MB)
        flash_disk = OmniBook().run(StorageSetup.SDP10, "read", 1 * MB)
        assert card.throughput_kbps < flash_disk.throughput_kbps

    def test_incompressible_small_reads_faster_on_card(self):
        # "reads of uncompressible data obtaining about twice the bandwidth
        # of reads of compressible data".
        random_read = OmniBook().run(
            StorageSetup.INTEL_MFFS, "read", 4 * KB, data_kind=DataKind.RANDOM
        )
        text_read = OmniBook().run(
            StorageSetup.INTEL_MFFS, "read", 4 * KB, data_kind=DataKind.TEXT
        )
        assert random_read.throughput_kbps > 1.3 * text_read.throughput_kbps

    def test_stacker_small_writes_beat_theoretical_limit(self):
        # Write-behind cache: measured > the SDP10's 50 KB/s media rate.
        result = OmniBook().run(
            StorageSetup.SDP10_COMPRESSED, "write", 4 * KB, data_kind=DataKind.TEXT
        )
        assert result.throughput_kbps > 50


class TestFigure1:
    def test_mffs_latency_grows_linearly(self):
        series = OmniBook().write_latency_series(
            StorageSetup.INTEL_MFFS, data_kind=DataKind.TEXT
        )
        latencies = [latency for _, latency, _ in series]
        assert latencies[-1] > 3 * latencies[0]
        # Roughly linear: the middle sits near the endpoint average.
        middle = latencies[len(latencies) // 2]
        assert middle == pytest.approx(
            (latencies[0] + latencies[-1]) / 2, rel=0.25
        )

    def test_disk_latency_flat(self):
        series = OmniBook().write_latency_series(
            StorageSetup.CU140, data_kind=DataKind.RANDOM
        )
        latencies = [latency for _, latency, _ in series]
        assert max(latencies) < 1.5 * min(latencies)

    def test_series_covers_the_file(self):
        series = OmniBook().write_latency_series(StorageSetup.INTEL_MFFS)
        assert series[-1][0] == pytest.approx(1024.0)  # cumulative KB


class TestFigure3:
    def test_throughput_declines_with_cumulative_writes(self):
        series = OmniBook(seed=5).overwrite_throughput_series(
            1 * MB, n_megabytes=8
        )
        assert series[-1][1] < series[0][1]

    def test_higher_live_data_is_strictly_worse(self):
        low = OmniBook(seed=5).overwrite_throughput_series(1 * MB, n_megabytes=6)
        high = OmniBook(seed=5).overwrite_throughput_series(
            int(9.5 * MB), n_megabytes=6
        )
        low_mean = sum(t for _, t in low) / len(low)
        high_mean = sum(t for _, t in high) / len(high)
        assert high_mean < low_mean


class TestRandomAccess:
    """Section 3: random accesses 'measure the overhead of seeks'."""

    def test_random_reads_slower_on_disk(self):
        sequential = OmniBook().run(
            StorageSetup.CU140, "read", 256 * KB, access="sequential"
        )
        random_access = OmniBook().run(
            StorageSetup.CU140, "read", 256 * KB, access="random"
        )
        assert random_access.throughput_kbps < sequential.throughput_kbps / 2

    def test_random_reads_barely_hurt_flash(self):
        sequential = OmniBook().run(
            StorageSetup.SDP10, "read", 256 * KB, access="sequential"
        )
        random_access = OmniBook().run(
            StorageSetup.SDP10, "read", 256 * KB, access="random"
        )
        # No mechanical seek: the gap stays small.
        assert random_access.throughput_kbps > sequential.throughput_kbps / 2

    def test_invalid_access_mode(self):
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            OmniBook().run(StorageSetup.CU140, "read", 4 * KB, access="zigzag")


class TestTraceReplay:
    def test_run_trace_returns_means(self, small_synth_trace):
        stats = OmniBook().run_trace(StorageSetup.SDP10, small_synth_trace)
        assert stats["reads"] > 0
        assert stats["writes"] > 0
        assert stats["read_mean_ms"] > 0
        assert stats["write_mean_ms"] > stats["read_mean_ms"]
