"""Flash wear statistics and endurance arithmetic."""

import pytest

from repro.flash.segment import Segment
from repro.flash.wear import wear_stats


def segments_with_erases(counts):
    segments = []
    for index, count in enumerate(counts):
        segment = Segment(index, 4)
        segment.erase_count = count
        segments.append(segment)
    return segments


def test_totals_and_extremes():
    stats = wear_stats(segments_with_erases([3, 7, 0]), 100_000, 3600.0)
    assert stats.total_erasures == 10
    assert stats.max_erasures == 7
    assert stats.mean_erasures == pytest.approx(10 / 3)
    assert stats.segments == 3


def test_max_erase_rate():
    stats = wear_stats(segments_with_erases([10]), 100_000, 7200.0)
    assert stats.max_erase_rate_per_hour == pytest.approx(5.0)


def test_lifetime_projection():
    stats = wear_stats(segments_with_erases([10]), 100_000, 3600.0)
    # 10 erases/hour against a 100k budget: 10,000 hours.
    assert stats.lifetime_hours() == pytest.approx(10_000.0)


def test_lifetime_infinite_without_erases():
    stats = wear_stats(segments_with_erases([0, 0]), 100_000, 3600.0)
    assert stats.lifetime_hours() == float("inf")


def test_wear_ratio():
    low = wear_stats(segments_with_erases([7]), 100_000, 3600.0)
    high = wear_stats(segments_with_erases([34]), 100_000, 3600.0)
    # The paper's mac numbers: 7 -> 34 max erasures.
    assert high.wear_ratio(low) == pytest.approx(34 / 7)


def test_wear_ratio_zero_baseline():
    low = wear_stats(segments_with_erases([0]), 100_000, 3600.0)
    high = wear_stats(segments_with_erases([5]), 100_000, 3600.0)
    assert high.wear_ratio(low) == float("inf")
    assert low.wear_ratio(low) == 1.0


def test_empty_segments():
    stats = wear_stats([], 100_000, 3600.0)
    assert stats.max_erasures == 0
    assert stats.mean_erasures == 0.0


def test_zero_duration_rate():
    stats = wear_stats(segments_with_erases([5]), 100_000, 0.0)
    assert stats.max_erase_rate_per_hour == 0.0
