"""System-level property tests: random configurations and workloads must
never break conservation laws or produce nonsense statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimulationConfig
from repro.core.simulator import simulate
from repro.traces.record import Operation
from repro.traces.synthetic import SyntheticWorkload
from repro.traces.workloads import WorkloadSpec
from repro.units import KB, MB

DEVICES = (
    "cu140-datasheet",
    "kh-datasheet",
    "sdp10-measured",
    "sdp5-datasheet",
    "sdp5a-datasheet",
    "intel-datasheet",
    "intel-measured",
    "intel-series2plus",
)


config_strategy = st.fixed_dictionaries(
    {
        "device": st.sampled_from(DEVICES),
        "dram_bytes": st.sampled_from([0, 256 * KB, 1 * MB, 2 * MB]),
        "sram_bytes": st.sampled_from([0, 8 * KB, 32 * KB]),
        "flash_utilization": st.sampled_from([0.4, 0.6, 0.8, 0.9]),
        "spin_down_timeout_s": st.sampled_from([None, 1.0, 5.0, 30.0]),
        "cleaning_policy": st.sampled_from(
            ["greedy", "cost-benefit", "envy", "wear-aware", "cold-swap"]
        ),
        "write_back": st.booleans(),
        "background_cleaning": st.booleans(),
    }
)


@settings(max_examples=25, deadline=None)
@given(options=config_strategy)
def test_any_configuration_simulates_sanely(options):
    trace = SyntheticWorkload().generate(n_ops=400, seed=11)
    result = simulate(trace, SimulationConfig(**options))
    # Conservation and sanity invariants:
    assert result.energy_j >= 0.0
    assert result.duration_s >= 0.0
    assert result.read_response.mean_s >= 0.0
    assert result.write_response.mean_s >= 0.0
    assert result.read_response.max_s >= result.read_response.mean_s * 0.999
    assert result.energy_j == pytest.approx(
        sum(sum(b.values()) for b in result.energy_breakdown.values())
    )
    counts = trace.operation_counts()
    measured = int(len(trace) * 0.9)
    assert result.n_reads + result.n_writes + result.n_deletes <= len(trace)
    assert result.n_reads <= counts[Operation.READ]


workload_strategy = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    duration_s=st.just(600.0),
    distinct_kbytes=st.integers(min_value=64, max_value=2048),
    read_fraction=st.floats(min_value=0.1, max_value=0.9),
    block_size=st.sampled_from([512, 1024]),
    mean_read_blocks=st.floats(min_value=1.0, max_value=8.0),
    mean_write_blocks=st.floats(min_value=1.0, max_value=8.0),
    interarrival_mean_s=st.floats(min_value=0.01, max_value=2.0),
    interarrival_max_s=st.just(60.0),
    delete_fraction=st.sampled_from([0.0, 0.02]),
    zipf_exponent=st.floats(min_value=0.0, max_value=1.5),
    repeat_fraction=st.floats(min_value=0.0, max_value=0.8),
    sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    large_fraction=st.sampled_from([0.0, 0.02]),
)


@settings(max_examples=25, deadline=None)
@given(spec=workload_strategy, seed=st.integers(min_value=0, max_value=99))
def test_any_workload_spec_generates_valid_traces(spec, seed):
    trace = spec.generate(seed=seed, n_ops=200)
    assert len(trace) == 200
    previous = 0.0
    deleted: set[int] = set()
    for record in trace:
        assert record.time >= previous  # monotone time
        previous = record.time
        if record.op is Operation.DELETE:
            deleted.add(record.file_id)
        else:
            assert record.size > 0
            assert record.offset % spec.block_size == 0
            if record.op is Operation.READ:
                assert record.file_id not in deleted
            else:
                deleted.discard(record.file_id)


@settings(max_examples=10, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=1_000_000),
    device=st.sampled_from(["cu140-datasheet", "intel-datasheet", "sdp5-datasheet"]),
)
def test_fault_injection_is_deterministic_per_seed(fault_seed, device):
    """Same FaultPlan seed => identical reliability metrics, bit for bit;
    a different seed must change the drawn fault sequence."""
    from repro.faults.plan import FaultPlan

    trace = SyntheticWorkload().generate(n_ops=300, seed=11)

    def run(seed):
        plan = FaultPlan(
            seed=seed,
            transient_read_rate=0.05,
            transient_write_rate=0.05,
            power_loss_times=(trace.duration * 0.5,),
        )
        return simulate(trace, SimulationConfig(device=device, fault_plan=plan))

    first, again = run(fault_seed), run(fault_seed)
    assert first.reliability == again.reliability
    assert first.energy_j == again.energy_j
    assert first.to_dict() == again.to_dict()

    other = run(fault_seed + 1)
    # The injector draws a different sequence; the counters cannot all
    # coincide on a 300-op trace with 5% error rates.
    assert (
        first.reliability != other.reliability or first.energy_j != other.energy_j
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    utilization=st.sampled_from([0.5, 0.8, 0.95]),
)
def test_flash_card_conservation_under_random_workloads(seed, utilization):
    """Live bytes on the card always equal the trace's live dataset."""
    from repro.core.hierarchy import build_hierarchy
    from repro.traces.filemap import FileMapper

    trace = SyntheticWorkload().generate(n_ops=300, seed=seed)
    mapper = FileMapper(trace.block_size)
    ops = mapper.translate_all(trace)
    config = SimulationConfig(
        device="intel-datasheet", flash_utilization=utilization, dram_bytes=0
    )
    hierarchy = build_hierarchy(config, trace.block_size, mapper.high_water_blocks)
    card = hierarchy.device
    preloaded = card.live_blocks

    live: set[int] = set(range(preloaded))
    for op in ops:
        if op.op is Operation.READ:
            hierarchy.read(op)
        elif op.op is Operation.WRITE:
            hierarchy.write(op)
            live.update(op.blocks)
        else:
            hierarchy.delete(op)
            live.difference_update(op.blocks)
    card.check_invariants()
    assert card.live_blocks == len(live)
