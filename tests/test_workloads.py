"""The mac/dos/hp workload generators vs their Table 3 targets."""

import pytest

from repro.errors import TraceError
from repro.traces.record import Operation
from repro.traces.stats import compute_statistics
from repro.traces.workloads import (
    DosWorkload,
    HpWorkload,
    MacWorkload,
    WorkloadSpec,
    workload_by_name,
)
from repro.units import KB


@pytest.fixture(scope="module")
def mac_trace():
    return MacWorkload().generate(seed=5, n_ops=20_000)


@pytest.fixture(scope="module")
def dos_trace():
    return DosWorkload().generate(seed=5, n_ops=5_000)


@pytest.fixture(scope="module")
def hp_trace():
    return HpWorkload().generate(seed=5, n_ops=5_000)


class TestTable3Targets:
    def test_mac_read_fraction(self, mac_trace):
        stats = compute_statistics(mac_trace)
        assert stats.fraction_reads == pytest.approx(0.50, abs=0.03)

    def test_dos_read_fraction(self, dos_trace):
        stats = compute_statistics(dos_trace)
        assert stats.fraction_reads == pytest.approx(0.24, abs=0.03)

    def test_hp_read_fraction(self, hp_trace):
        stats = compute_statistics(hp_trace)
        assert stats.fraction_reads == pytest.approx(0.38, abs=0.03)

    def test_mac_block_size(self, mac_trace):
        assert mac_trace.block_size == KB

    def test_dos_block_size(self, dos_trace):
        assert dos_trace.block_size == KB // 2

    def test_mac_transfer_sizes(self, mac_trace):
        stats = compute_statistics(mac_trace)
        assert stats.mean_read_blocks == pytest.approx(1.3, rel=0.15)
        assert stats.mean_write_blocks == pytest.approx(1.2, rel=0.15)

    def test_dos_transfer_sizes(self, dos_trace):
        stats = compute_statistics(dos_trace)
        assert stats.mean_read_blocks == pytest.approx(3.8, rel=0.25)
        assert stats.mean_write_blocks == pytest.approx(3.4, rel=0.25)

    def test_hp_transfer_sizes(self, hp_trace):
        stats = compute_statistics(hp_trace)
        assert stats.mean_read_blocks == pytest.approx(4.3, rel=0.25)
        assert stats.mean_write_blocks == pytest.approx(6.2, rel=0.25)

    def test_mac_interarrival_mean(self, mac_trace):
        stats = compute_statistics(mac_trace)
        assert stats.interarrival_mean_s == pytest.approx(0.078, rel=0.15)

    def test_dos_interarrival_mean(self, dos_trace):
        stats = compute_statistics(dos_trace)
        assert stats.interarrival_mean_s == pytest.approx(0.528, rel=0.2)

    def test_hp_interarrival_mean(self, hp_trace):
        stats = compute_statistics(hp_trace)
        assert stats.interarrival_mean_s == pytest.approx(11.1, rel=0.25)

    def test_interarrival_caps_respected(self, mac_trace, dos_trace, hp_trace):
        for trace, cap in ((mac_trace, 90.8), (dos_trace, 713.0), (hp_trace, 1800.0)):
            stats = compute_statistics(trace)
            assert stats.interarrival_max_s <= cap + 1e-6

    def test_only_dos_deletes(self, mac_trace, dos_trace, hp_trace):
        assert mac_trace.operation_counts()[Operation.DELETE] == 0
        assert dos_trace.operation_counts()[Operation.DELETE] > 0
        assert hp_trace.operation_counts()[Operation.DELETE] == 0


class TestGeneratorMechanics:
    def test_lookup_by_name(self):
        assert workload_by_name("mac").name == "mac"
        assert workload_by_name("hp").name == "hp"

    def test_unknown_name(self):
        with pytest.raises(TraceError):
            workload_by_name("vax")

    def test_determinism(self):
        a = MacWorkload().generate(seed=3, n_ops=300)
        b = MacWorkload().generate(seed=3, n_ops=300)
        assert [(r.time, r.file_id, r.offset) for r in a] == [
            (r.time, r.file_id, r.offset) for r in b
        ]

    def test_n_operations_from_duration(self):
        spec = MacWorkload()
        assert spec.n_operations == int(spec.duration_s / spec.interarrival_mean_s)

    def test_reads_never_target_deleted_files(self, dos_trace):
        deleted = set()
        for record in dos_trace:
            if record.op is Operation.DELETE:
                deleted.add(record.file_id)
            elif record.op is Operation.READ:
                assert record.file_id not in deleted
            elif record.op is Operation.WRITE:
                deleted.discard(record.file_id)

    def test_offsets_within_files(self, mac_trace):
        # offsets are block-aligned and inside the file's allocated size
        for record in mac_trace:
            if record.op is Operation.DELETE:
                continue
            assert record.offset % mac_trace.block_size == 0

    def test_mac_write_traffic_is_concentrated(self, mac_trace):
        """write_hot_access_fraction: writes touch far less distinct data
        than the trace as a whole (the hot write working set)."""
        written_blocks = set()
        write_events = 0
        for record in mac_trace:
            if record.op is Operation.WRITE:
                first = record.offset // KB
                last = (record.end_offset - 1) // KB
                written_blocks.update(
                    (record.file_id, index) for index in range(first, last + 1)
                )
                write_events += record.size // KB or 1
        # Heavy rewriting: each written block is overwritten many times.
        assert write_events / len(written_blocks) > 3.0
        # And the write working set is small next to all data accessed
        # (cold-read coverage keeps growing with trace length, so the bound
        # is loose at this short length).
        assert len(written_blocks) * KB < 0.75 * mac_trace.distinct_bytes()

    def test_invalid_spec_rejected(self):
        with pytest.raises(TraceError):
            WorkloadSpec(
                name="bad", duration_s=10, distinct_kbytes=10,
                read_fraction=1.5, block_size=KB,
                mean_read_blocks=1, mean_write_blocks=1,
                interarrival_mean_s=1, interarrival_max_s=10,
            )

    def test_min_max_file_blocks_validated(self):
        with pytest.raises(TraceError):
            WorkloadSpec(
                name="bad", duration_s=10, distinct_kbytes=10,
                read_fraction=0.5, block_size=KB,
                mean_read_blocks=1, mean_write_blocks=1,
                interarrival_mean_s=1, interarrival_max_s=10,
                min_file_blocks=10, max_file_blocks=5,
            )
