"""Benchmark: regenerate Tables 4(a)-(c) (the paper's core comparison)."""

from conftest import run_and_report


def test_bench_table4(benchmark):
    result = run_and_report(benchmark, "table4")
    for table in result.tables:
        energy = dict(zip(table.column("device"), table.column("energy J")))
        # Flash an order of magnitude (at least 4x at small scales) below disk.
        assert energy["intel-datasheet"] < energy["cu140-datasheet"] / 4
        assert energy["sdp5-datasheet"] < energy["cu140-datasheet"] / 4
