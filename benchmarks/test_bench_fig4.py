"""Benchmark: regenerate Figure 4 (DRAM vs flash size, dos trace)."""

from conftest import run_and_report


def test_bench_fig4(benchmark):
    result = run_and_report(benchmark, "fig4")
    table = result.tables[0]
    by_configuration = {}
    for configuration, dram_kb, energy, response in table.rows:
        by_configuration.setdefault(configuration, []).append((dram_kb, energy))
    for configuration, rows in by_configuration.items():
        if configuration.startswith("intel"):
            # "Adding DRAM ... increases the energy used for DRAM without
            # any appreciable benefits."
            assert rows[-1][1] >= rows[0][1]
