"""Benchmark: regenerate Table 3 (trace characteristics)."""

from conftest import run_and_report


def test_bench_table3(benchmark):
    result = run_and_report(benchmark, "table3")
    table = result.tables[0]
    # Read fractions are scale-invariant and must sit on the paper targets.
    for trace, statistic, generated, target, ratio in table.rows:
        if statistic == "fraction_reads":
            assert abs(generated - target) < 0.05
