"""Fleet throughput benchmark: reference vs fast path, devices/sec.

Runs the same fleet spec through ``run_fleet`` twice — the reference
per-device path and the vectorized fast path — and writes the measured
rates and speedup to ``BENCH_fleet.json``.  Optionally (``--verify``)
checks the two population summaries against the declared equivalence
contract (:mod:`repro.fleet.contract`) and records the verdict in the
artifact; any violation fails the run.

The reference path can be measured on a *subset* of the fleet
(``--ref-devices``, default capped at 8192) because devices/sec is a
rate and the reference path is linear in devices — benchmarking the
reference at 100k devices costs ~10 minutes for the same answer.  The
subsetting is never silent: the artifact records exactly what ran, and
``--ref-devices 0`` forces the full fleet through the reference path.

Usage::

    PYTHONPATH=src python benchmarks/fleet_throughput.py \
        --devices 100000 --verify --output BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Reference-path measurement cap (devices) unless --ref-devices says
#: otherwise.  ~45 s of reference simulation; plenty for a stable rate.
DEFAULT_REF_CAP = 8192

#: The acceptance floor the CI job holds the measured speedup to.
SPEEDUP_FLOOR = 10.0


def measure(spec, *, jobs: int, fast: bool) -> dict:
    from repro.fleet import run_fleet

    started = time.perf_counter()
    run = run_fleet(spec, jobs=jobs, fast=fast)
    wall = time.perf_counter() - started
    if not run.ok:
        errors = [o.error for o in run.outcomes if not o.ok]
        raise RuntimeError(f"fleet run failed: {errors[:3]}")
    return {
        "devices": spec.devices,
        "wall_s": round(wall, 3),
        "devices_per_s": round(spec.devices / wall, 1),
        "shards": run.shards,
        "jobs": run.jobs,
        "summary": run.summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=100_000,
                        help="fleet size for the fast path (default 100000)")
    parser.add_argument("--ref-devices", type=int, default=None,
                        help="fleet size for the reference path (default "
                        f"min(devices, {DEFAULT_REF_CAP}); 0 = full fleet)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--ops", type=int, default=400)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for both paths (default 1: "
                        "single-process rates, the honest comparison)")
    parser.add_argument("--verify", action="store_true",
                        help="check fast vs reference population summaries "
                        "against the repro.fleet.contract tolerances "
                        "(compared on the reference-sized fleet)")
    parser.add_argument("--floor", type=float, default=SPEEDUP_FLOOR,
                        help=f"fail below this speedup (default "
                        f"{SPEEDUP_FLOOR}x; 0 disables)")
    parser.add_argument("--output", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    from repro.fleet import FleetSpec, compare_summaries

    ref_devices = args.ref_devices
    if ref_devices is None:
        ref_devices = min(args.devices, DEFAULT_REF_CAP)
    elif ref_devices == 0:
        ref_devices = args.devices
    if ref_devices < args.devices:
        print(f"reference path measured on {ref_devices} of "
              f"{args.devices} devices (rate-based comparison; "
              f"--ref-devices 0 forces the full fleet)", file=sys.stderr)

    fast_spec = FleetSpec(devices=args.devices, seed=args.seed,
                          scale=args.scale, ops_per_device=args.ops)
    ref_spec = FleetSpec(devices=ref_devices, seed=args.seed,
                         scale=args.scale, ops_per_device=args.ops)

    print(f"fast path: {args.devices} devices ...", file=sys.stderr)
    fast = measure(fast_spec, jobs=args.jobs, fast=True)
    print(f"  {fast['devices_per_s']} devices/sec ({fast['wall_s']}s)",
          file=sys.stderr)
    print(f"reference path: {ref_devices} devices ...", file=sys.stderr)
    reference = measure(ref_spec, jobs=args.jobs, fast=False)
    print(f"  {reference['devices_per_s']} devices/sec "
          f"({reference['wall_s']}s)", file=sys.stderr)

    speedup = fast["devices_per_s"] / reference["devices_per_s"]
    print(f"speedup: {speedup:.1f}x", file=sys.stderr)

    violations: list[str] | None = None
    if args.verify:
        if ref_devices == args.devices:
            fast_summary = fast["summary"]
        else:
            # Contract comparison needs matching fleets: re-run the fast
            # path at the reference size (seconds, not minutes).
            fast_summary = measure(ref_spec, jobs=args.jobs,
                                   fast=True)["summary"]
        violations = compare_summaries(reference["summary"], fast_summary)
        verdict = "ok" if not violations else "CONTRACT VIOLATED"
        print(f"equivalence contract ({ref_devices} devices): {verdict}",
              file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)

    document = {
        "spec": {"seed": args.seed, "scale": args.scale, "ops": args.ops,
                 "jobs": args.jobs},
        "fast": {k: fast[k] for k in
                 ("devices", "wall_s", "devices_per_s", "shards")},
        "reference": {k: reference[k] for k in
                      ("devices", "wall_s", "devices_per_s", "shards")},
        "speedup": round(speedup, 2),
        "floor": args.floor,
        "contract": (None if violations is None
                     else {"devices": ref_devices,
                           "ok": not violations,
                           "violations": violations}),
    }
    Path(args.output).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}", file=sys.stderr)

    if violations:
        return 1
    if args.floor and speedup < args.floor:
        print(f"FAIL: speedup {speedup:.1f}x below the {args.floor}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
