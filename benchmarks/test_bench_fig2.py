"""Benchmark: regenerate Figure 2 (energy/write response vs utilization)."""

from conftest import run_and_report


def test_bench_fig2(benchmark):
    result = run_and_report(benchmark, "fig2")
    table = result.tables[0]
    by_trace = {}
    for row in table.rows:
        by_trace.setdefault(row[0], []).append(row)
    for trace, rows in by_trace.items():
        first, last = rows[0], rows[-1]
        # Energy rises from 40% to 95% utilization.
        assert last[2] >= first[2], f"{trace}: energy fell with utilization"
        # Cleaning copies rise too.
        assert last[7] >= first[7]
