"""Benchmark: section 5.3 asynchronous erasure (SDP5 vs SDP5A)."""

from conftest import run_and_report


def test_bench_async_cleaning(benchmark):
    result = run_and_report(benchmark, "async-cleaning")
    table = result.tables[0]
    for row in table.rows:
        sync_ms, async_ms = row[1], row[2]
        # Abstract: "asynchronous erasure can improve write response time
        # by a factor of 2.5".
        assert async_ms < sync_ms / 2
