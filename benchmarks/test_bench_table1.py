"""Benchmark: regenerate Table 1 (OmniBook micro-benchmarks)."""

from conftest import run_and_report


def test_bench_table1(benchmark):
    result = run_and_report(benchmark, "table1", scale=1.0)
    table = result.tables[0]
    # Shape: the disk posts the best large-file write throughput.
    throughput = {
        (row[0], row[1]): row[3] for row in table.rows  # unc 1M column
    }
    assert throughput[("cu140", "write")] > throughput[("sdp10", "write")]
    assert throughput[("cu140", "write")] > throughput[("intel", "write")]
