"""Benchmark: section 7 headline claims (energy savings, battery life)."""

from conftest import run_and_report


def test_bench_headline(benchmark):
    result = run_and_report(benchmark, "headline")
    savings = result.tables[0]
    for trace, pair, saved, read_speedup, write_slowdown in savings.rows:
        assert int(saved.rstrip("%")) >= 55
        assert read_speedup > 2
    battery = result.tables[1]
    extensions = [int(row[2].rstrip("%")) for row in battery.rows]
    assert max(extensions) >= 15  # the 22%-class headline
