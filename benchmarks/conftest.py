"""Benchmark-suite helpers.

Each benchmark runs one experiment driver end to end (workload generation,
simulation/testbed, aggregation) and prints the regenerated table in the
paper's row format.  Set ``REPRO_BENCH_SCALE`` (0 < scale <= 1, default
0.2) to trade runtime for fidelity; ``1.0`` reproduces the paper-sized
runs used for EXPERIMENTS.md.

Drivers execute through the engine's in-process unit executor
(:func:`repro.engine.run_unit_inline`) — the same serial primitive
``repro run --jobs 1`` uses — with no result cache, so benchmark timings
always measure real driver work.
"""

from __future__ import annotations

import os

import pytest

#: Trace-length scale for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


def run_and_report(benchmark, experiment_id: str, scale: float | None = None, **kwargs):
    """Benchmark one experiment driver (single round) and print its report."""
    from repro.engine import WorkUnit, freeze_kwargs, run_unit_inline

    scale = BENCH_SCALE if scale is None else scale
    unit = WorkUnit(
        experiment_id=experiment_id,
        scale=scale,
        seed=kwargs.pop("seed", None),
        kwargs=freeze_kwargs(kwargs),
    )
    result = benchmark.pedantic(
        run_unit_inline,
        args=(unit,),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE
