"""Kernel equivalence sweep + timing artifact.

Runs the full Table 4 matrix (3 traces x 7 devices) at a chosen scale
under three kernels — reference, batched, vector — and, per cell:

* checks the batched result is **bit-identical** to the reference (the
  fast path is an optimisation, not a behaviour), via
  :func:`repro.kernel.tolerance.compare_results` *plus* exact
  energy/duration equality;
* checks the vector result matches the reference within the declared
  tolerances (:mod:`repro.kernel.tolerance`), or that it fell back with
  a named reason on the cells outside the vector envelope;
* records per-cell wall times for all three kernels.

The JSON artifact (``--output``) is what the CI ``kernel-equivalence``
job uploads: a per-cell timing table and the aggregate speedup, so a
kernel perf regression shows up as an artifact diff even while the
speedup floor in ``perf_guard.py`` still holds.

Usage::

    PYTHONPATH=src python benchmarks/kernel_equivalence.py \
        --scale 0.2 --output kernel-equivalence.json

Exit status 1 on any tolerance violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

TRACES = ("mac", "dos", "hp")


def sweep(scale: float, seed: int | None = None) -> dict:
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate
    from repro.experiments.exp_table4 import DEVICE_ROWS
    from repro.experiments.traces_cache import dram_for, trace_for
    from repro.kernel.tolerance import compare_results

    # Generate/compile every trace up front so the first timed cell does
    # not pay the one-off costs.
    for trace_name in TRACES:
        trace_for(trace_name, scale, seed=seed)

    cells = []
    problems: list[str] = []
    totals = {"reference_s": 0.0, "batched_s": 0.0, "vector_s": 0.0}
    for trace_name in TRACES:
        trace = trace_for(trace_name, scale, seed=seed)
        for device in DEVICE_ROWS:
            config = SimulationConfig(
                device=device,
                dram_bytes=dram_for(trace_name),
                spin_down_timeout_s=5.0,
                flash_utilization=0.8,
            )
            results = {}
            timings = {}
            for kernel in ("reference", "batched", "vector"):
                start = time.perf_counter()
                results[kernel] = simulate(trace, config, kernel=kernel)
                timings[f"{kernel}_s"] = time.perf_counter() - start
            label = f"{trace_name}/{device}"

            mismatches = compare_results(results["reference"],
                                         results["batched"])
            if results["batched"].energy_j != results["reference"].energy_j:
                mismatches.append("batched energy_j not bit-identical")
            problems.extend(f"{label} [batched]: {m}" for m in mismatches)

            vector = results["vector"]
            fallback = vector.extra.get("kernel_fallback_reason")
            if fallback is None:
                vector_mismatches = compare_results(results["reference"],
                                                    vector)
                problems.extend(
                    f"{label} [vector]: {m}" for m in vector_mismatches
                )
            cells.append({
                "trace": trace_name,
                "device": device,
                **timings,
                "vector_fallback": fallback,
            })
            for key in totals:
                totals[key] += timings[key]
    vectorized = [c for c in cells if c["vector_fallback"] is None]
    return {
        "scale": scale,
        "seed": seed,
        "cells": cells,
        "totals": totals,
        "vector_cells": len(vectorized),
        "fallback_cells": len(cells) - len(vectorized),
        "speedup_batched_over_vector": (
            totals["batched_s"] / totals["vector_s"]
            if totals["vector_s"] > 0 else None
        ),
        "problems": problems,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="trace-length scale in (0, 1] (default 0.2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="trace-generation seed (default: module default)")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the timing artifact JSON here")
    args = parser.parse_args(argv)

    report = sweep(args.scale, seed=args.seed)
    for cell in report["cells"]:
        note = (f"fallback: {cell['vector_fallback']}"
                if cell["vector_fallback"] else
                f"{cell['batched_s'] / cell['vector_s']:6.1f}x")
        print(f"{cell['trace']:4s} {cell['device']:20s} "
              f"ref {cell['reference_s']:7.3f}s  "
              f"batched {cell['batched_s']:7.3f}s  "
              f"vector {cell['vector_s']:7.3f}s  {note}")
    totals = report["totals"]
    speedup = report["speedup_batched_over_vector"]
    print(f"\n{report['vector_cells']} vectorized cell(s), "
          f"{report['fallback_cells']} fallback cell(s); "
          f"batched {totals['batched_s']:.2f}s vs "
          f"vector {totals['vector_s']:.2f}s"
          + (f" ({speedup:.2f}x)" if speedup else ""))

    if args.output:
        path = Path(args.output)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")

    if report["problems"]:
        print(f"\n{len(report['problems'])} tolerance violation(s):",
              file=sys.stderr)
        for problem in report["problems"]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("kernel equivalence holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
