"""Benchmark: section 5.2 endurance (wear at 40% vs 95% utilization)."""

from conftest import run_and_report


def test_bench_endurance(benchmark):
    result = run_and_report(benchmark, "endurance")
    table = result.tables[0]
    for row in table.rows:
        max_low, max_high = row[1], row[2]
        assert max_high >= max_low  # burn-out never improves with fullness
