"""Thin benchmarks/ entry point for the profiling harness.

Equivalent to ``repro profile``, runnable without installing the package::

    python benchmarks/profiler.py table3 --scale 0.1 -o profile.json

All logic lives in :mod:`repro.profiling`; this wrapper only makes the
``src`` layout importable when the package is not installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.profiling import main

if __name__ == "__main__":
    sys.exit(main())
