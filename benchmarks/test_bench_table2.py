"""Benchmark: render Table 2 (manufacturer specifications)."""

from conftest import run_and_report


def test_bench_table2(benchmark):
    result = run_and_report(benchmark, "table2", scale=1.0)
    assert len(result.tables[0].rows) == 8
