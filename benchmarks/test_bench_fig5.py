"""Benchmark: regenerate Figure 5 (SRAM write-buffer sweep)."""

from conftest import run_and_report


def test_bench_fig5(benchmark):
    result = run_and_report(benchmark, "fig5")
    table = result.tables[0]
    for trace in ("mac", "dos"):
        rows = [row for row in table.rows if row[0] == trace]
        normalized_write = {row[1]: row[5] for row in rows}
        # 32 KB SRAM improves write response by >= an order of magnitude
        # for the cache-backed traces.
        assert normalized_write[32] < 0.1
    hp_rows = {row[1]: row[5] for row in table.rows if row[0] == "hp"}
    if 32 in hp_rows:
        assert hp_rows[32] < 1.0  # improves, but far less than mac/dos
