"""Benchmarks: the six DESIGN.md ablations (A1-A6)."""

from conftest import run_and_report


def test_bench_ablation_cleaner(benchmark):
    result = run_and_report(benchmark, "ablation-cleaner")
    table = result.tables[0]
    assert set(table.column("policy")) == {"greedy", "cost-benefit", "envy"}


def test_bench_ablation_segment(benchmark):
    result = run_and_report(benchmark, "ablation-segment")
    table = result.tables[0]
    cleanings = dict(zip(table.column("segment KB"), table.column("cleanings")))
    # Smaller erasure units erase more often (fixed data volume).
    assert cleanings[16] >= cleanings[256]


def test_bench_ablation_spindown(benchmark):
    result = run_and_report(benchmark, "ablation-spindown")
    table = result.tables[0]
    spin_ups = dict(zip(table.column("threshold s"), table.column("spin-ups")))
    assert spin_ups["never"] == 0
    assert spin_ups[0.5] >= spin_ups[30.0]


def test_bench_ablation_writeback(benchmark):
    result = run_and_report(benchmark, "ablation-writeback")
    table = result.tables[0]
    for row in table.rows:
        saved = row[6]
        if saved != "-":
            assert int(saved.rstrip("%")) >= 0


def test_bench_ablation_series2plus(benchmark):
    result = run_and_report(benchmark, "ablation-series2plus")
    table = result.tables[0]
    by_device = {}
    for row in table.rows:
        by_device.setdefault(row[0], {})[row[1]] = row
    stall_index = table.headers.index("stall s")
    for trace, devices in by_device.items():
        assert (
            devices["intel-series2plus"][stall_index]
            <= devices["intel-datasheet"][stall_index]
        )


def test_bench_ablation_flash_sram(benchmark):
    result = run_and_report(benchmark, "ablation-flash-sram")
    table = result.tables[0]
    for row in table.rows:
        speedup = row[4]
        assert speedup > 1.0  # the buffer always helps write response


def test_bench_ablation_leveling(benchmark):
    result = run_and_report(benchmark, "ablation-leveling")
    table = result.tables[0]
    spread = dict(zip(table.column("policy"), table.column("max-mean spread")))
    # Active leveling never widens the wear spread vs plain greedy.
    assert spread["cold-swap"] <= spread["greedy"]
