"""Benchmark: section 5.1 simulator-vs-testbed validation on synth."""

from conftest import run_and_report


def test_bench_validation(benchmark):
    result = run_and_report(benchmark, "validation", scale=1.0)
    table = result.tables[0]
    for device, op, testbed_ms, simulator_ms, ratio in table.rows:
        # The paper saw agreement within a few percent except for flash
        # card reads (4x) and cu140 writes (2x); require the same order.
        assert 0.2 <= float(ratio) <= 5.0, f"{device}/{op} ratio {ratio}"
