"""Perf guard: the Request-object path must stay within budget of baseline.

The LayerStack refactor replaced the hand-wired hierarchy dispatch with
``Request``/``Response`` objects flowing through composable layers.  That
is more allocation per operation, so this guard pins the overhead:

* ``exp_table3`` at scale 0.1 (the acceptance workload — trace generation
  + statistics) must stay within 15% of the pre-refactor baseline;
* a simulation-path measure that drives the full request path (the mac
  workload against one device of each class: disk, flash disk, flash
  card) gets its own, wider budget — see ``BUDGETS``.

Wall times are normalized by a pure-Python calibration loop so the guard
is comparable across machines: the asserted quantity is
``(measure / calibration)`` relative to the recorded baseline, which was
captured with ``--record`` on the pre-refactor tree.

Usage::

    PYTHONPATH=src python benchmarks/perf_guard.py           # check
    PYTHONPATH=src python benchmarks/perf_guard.py --record  # re-baseline

Exit status 1 on a budget breach.  Re-recording the baseline is only
legitimate on the commit *before* a request-path change you intend to
guard.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")
#: Allowed slowdown of each normalized measure relative to the baseline.
#: ``table3_s`` is the issue's acceptance workload (< 15% wall time).
#: ``request_path_s`` is a stricter, pure-simulation measure added on top;
#: the Request/Response objects and per-layer attribution intrinsically
#: cost ~1.36x on that loop (measured with an interleaved A/B against the
#: pre-refactor tree), so its budget pins the overhead where it landed
#: rather than pretending the objects are free.  A regression past 1.5
#: means the request path itself got slower, not just noisier.
BUDGETS = {"table3_s": 1.15, "request_path_s": 1.5}
REPEATS = 5


def _best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time: the minimum is the least-noisy estimator."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate() -> float:
    """A fixed pure-Python workload approximating the simulator's mix of
    attribute access, float arithmetic, and dict churn."""

    def loop() -> None:
        table: dict[int, float] = {}
        total = 0.0
        for i in range(200_000):
            key = i % 512
            total += table.get(key, 0.0) * 0.5 + i * 1e-9
            table[key] = total
        if total < 0:  # pragma: no cover - keeps the loop un-elidable
            raise RuntimeError

    return _best(loop)


def measure_table3() -> float:
    from repro.experiments.runner import run_experiment

    return _best(lambda: run_experiment("table3", scale=0.1))


def measure_request_path() -> float:
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate
    from repro.traces.workloads import workload_by_name

    trace = workload_by_name("mac").generate(seed=7, n_ops=8000)
    devices = ("cu140-datasheet", "sdp5a-datasheet", "intel-datasheet")

    def loop() -> None:
        for device in devices:
            simulate(trace, SimulationConfig(device=device))

    return _best(loop)


def collect() -> dict[str, float]:
    return {
        "calibration_s": calibrate(),
        "table3_s": measure_table3(),
        "request_path_s": measure_request_path(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the current timings as the new baseline")
    parser.add_argument("--budget", type=float, default=None,
                        help="override every per-measure budget with one value")
    args = parser.parse_args(argv)

    current = collect()
    if args.record:
        BASELINE_PATH.write_text(json.dumps(current, indent=1, sort_keys=True))
        print(f"recorded baseline: {BASELINE_PATH}")
        for key, value in current.items():
            print(f"  {key:16s} {value:.4f}s")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failed = False
    for measure, default_budget in BUDGETS.items():
        budget = args.budget if args.budget is not None else default_budget
        base_score = baseline[measure] / baseline["calibration_s"]
        now_score = current[measure] / current["calibration_s"]
        ratio = now_score / base_score
        verdict = "ok" if ratio <= budget else "FAIL"
        failed = failed or ratio > budget
        print(f"{measure:16s} baseline {base_score:7.3f}  now {now_score:7.3f}  "
              f"ratio {ratio:5.2f}  budget {budget:4.2f}  {verdict}")
    if failed:
        print("perf guard FAILED: the request path exceeds its budget")
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
