"""Perf guard: the request path must stay within budget of the baseline.

The baseline anchor (``pre_refactor`` in ``perf_baseline.json``) was
recorded on the hand-wired hierarchy dispatch, before the LayerStack
refactor introduced ``Request``/``Response`` objects.  The hot-path
engine (pooled requests, compiled traces, batched dispatch) then clawed
that overhead back, and the budgets now hold the line *there*:

* ``table3_s`` — the acceptance workload (trace generation + statistics)
  must stay at least 25% *faster* than the pre-refactor anchor
  (memoised ``distinct_bytes`` and the inlined stats loop bought ~5x);
* ``request_path_s`` — the full simulation path (the mac workload
  against one device of each class: disk, flash disk, flash card) must
  stay within 10% of the anchor, i.e. the request objects are no longer
  allowed to cost more than noise;
* ``traced_path_s`` — the same simulation path with an
  ``ObservabilitySession`` attached must stay within 2x of the
  *untraced* anchor: observing may cost, but never an order of
  magnitude.  (Tracing disabled stays governed by ``request_path_s`` —
  the session is strictly opt-in and off by default.)

The vector kernel carries its own budget, a *speedup floor* rather than
a ratio against the pre-refactor anchor (the anchor predates the kernel
entirely): ``table4`` under ``kernel="vector"`` must stay at least
``VECTOR_SPEEDUP_FLOOR``x faster than the batched path at the guard's
scale.  The floor is deliberately below the full-scale speedup — fixed
per-run overheads (trace compilation, hierarchy construction) weigh more
at small scales — and the full-scale numbers live in the
``table4_vector`` section of ``perf_baseline.json``
(``{batched_s, vector_s, speedup}``, refreshed with ``--record-vector``).

Wall times are normalized by a pure-Python calibration loop so the guard
is comparable across machines: the asserted quantity is
``(measure / calibration)`` relative to the ``pre_refactor`` anchor.
Every section — calibration included — is timed best-of-``REPEATS``, and
the calibration loop runs both before and after the measures (keeping
the minimum) so frequency or scheduler drift during the much longer
measures cannot skew every score the same way.

Usage::

    PYTHONPATH=src python benchmarks/perf_guard.py           # check
    PYTHONPATH=src python benchmarks/perf_guard.py --record  # re-baseline

``--record`` refreshes the ``current`` section and preserves the
``pre_refactor`` anchor; the anchor itself must never be re-recorded, or
the improvement budgets would silently compare against the wrong tree.
Exit status 1 on a budget breach.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")
#: Allowed normalized ratio of each measure vs the ``pre_refactor``
#: anchor.  Budgets below 1.0 *require an improvement*: the hot-path
#: engine must keep table3 at least 25% faster than the anchor.
BUDGETS = {"table3_s": 0.75, "request_path_s": 1.1, "traced_path_s": 2.0}
#: Anchor key each measure compares against when the anchor predates the
#: measure itself: the traced path is budgeted against the *untraced*
#: pre-refactor request path (the anchor never ran under a tracer).
ANCHOR_KEY = {"traced_path_s": "request_path_s"}
REPEATS = 5

#: Minimum table4 batched/vector speedup at ``VECTOR_SCALE``.  Full scale
#: measures ~11x (see the ``table4_vector`` baseline section); at 0.2 the
#: kernel's fixed setup costs weigh more, so the floor sits lower.
VECTOR_SPEEDUP_FLOOR = 4.0
VECTOR_SCALE = 0.2
VECTOR_REPEATS = 3

#: Minimum fleet reference/fast speedup at ``FLEET_DEVICES`` (the
#: acceptance floor; at 100k devices the measured speedup is higher —
#: see BENCH_fleet.json, refreshed by benchmarks/fleet_throughput.py).
FLEET_SPEEDUP_FLOOR = 10.0
FLEET_DEVICES = 512
FLEET_REPEATS = 2


def _best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time: the minimum is the least-noisy estimator."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate() -> float:
    """A fixed pure-Python workload approximating the simulator's mix of
    attribute access, float arithmetic, and dict churn."""

    def loop() -> None:
        table: dict[int, float] = {}
        total = 0.0
        for i in range(200_000):
            key = i % 512
            total += table.get(key, 0.0) * 0.5 + i * 1e-9
            table[key] = total
        if total < 0:  # pragma: no cover - keeps the loop un-elidable
            raise RuntimeError

    return _best(loop)


def measure_table3() -> float:
    from repro.experiments.runner import run_experiment

    return _best(lambda: run_experiment("table3", scale=0.1))


def measure_request_path() -> float:
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate
    from repro.traces.workloads import workload_by_name

    trace = workload_by_name("mac").generate(seed=7, n_ops=8000)
    devices = ("cu140-datasheet", "sdp5a-datasheet", "intel-datasheet")

    def loop() -> None:
        for device in devices:
            simulate(trace, SimulationConfig(device=device))

    return _best(loop)


def measure_traced_path() -> float:
    """The request-path workload with a live ObservabilitySession."""
    from repro.core.config import SimulationConfig
    from repro.core.simulator import simulate
    from repro.obs import ObservabilitySession
    from repro.traces.workloads import workload_by_name

    trace = workload_by_name("mac").generate(seed=7, n_ops=8000)
    devices = ("cu140-datasheet", "sdp5a-datasheet", "intel-datasheet")

    def loop() -> None:
        session = ObservabilitySession()
        for device in devices:
            simulate(trace, SimulationConfig(device=device), obs=session)

    return _best(loop)


def measure_table4_kernels(
    scale: float = VECTOR_SCALE, repeats: int = VECTOR_REPEATS
) -> dict[str, float]:
    """Best-of-N table4 wall time under the batched and vector kernels."""
    from repro.experiments.runner import run_experiment

    batched = _best(lambda: run_experiment("table4", scale=scale), repeats)
    vector = _best(
        lambda: run_experiment("table4", scale=scale, kernel="vector"), repeats
    )
    return {
        "batched_s": batched,
        "vector_s": vector,
        "speedup": batched / vector,
        "scale": scale,
    }


def measure_fleet_fast(
    devices: int = FLEET_DEVICES, repeats: int = FLEET_REPEATS
) -> dict[str, float]:
    """Best-of-N wall time for one fleet under both population paths."""
    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(devices=devices, seed=11, scale=0.1,
                     ops_per_device=400)
    reference = _best(lambda: run_fleet(spec, jobs=1), repeats)
    fast = _best(lambda: run_fleet(spec, jobs=1, fast=True), repeats)
    return {
        "reference_s": reference,
        "fast_s": fast,
        "speedup": reference / fast,
        "devices": devices,
    }


def collect() -> dict[str, float]:
    # Calibrate both before and after the measures and keep the minimum:
    # the measures take far longer than one calibration loop, so one-sided
    # thermal or scheduler drift would otherwise bias every score alike.
    calibration = calibrate()
    measures = {
        "table3_s": measure_table3(),
        "request_path_s": measure_request_path(),
        "traced_path_s": measure_traced_path(),
    }
    calibration = min(calibration, calibrate())
    return {"calibration_s": calibration, **measures}


def _anchor(baseline: dict) -> dict[str, float]:
    """The pre-refactor section; flat legacy files *are* the anchor."""
    return baseline.get("pre_refactor", baseline)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="refresh the 'current' baseline section "
                        "(the pre_refactor anchor and every other "
                        "section are preserved)")
    parser.add_argument("--record-vector", action="store_true",
                        help="re-measure the full-scale table4 "
                        "batched-vs-vector anchor (the 'table4_vector' "
                        "section; slow: two full table4 sweeps)")
    parser.add_argument("--budget", type=float, default=None,
                        help="override every per-measure budget with one value")
    args = parser.parse_args(argv)

    if args.record_vector:
        existing = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists() else {}
        )
        existing["table4_vector"] = measure_table4_kernels(
            scale=1.0, repeats=2
        )
        BASELINE_PATH.write_text(
            json.dumps(existing, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded full-scale vector anchor: {BASELINE_PATH}")
        for key, value in existing["table4_vector"].items():
            print(f"  {key:16s} {value:.4f}")
        return 0

    current = collect()
    if args.record:
        # Update in place: the pre_refactor anchor and any other section
        # (e.g. the full-scale ``table4_vector`` anchor) survive a
        # re-record untouched.
        recorded = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists() else {}
        )
        recorded["pre_refactor"] = _anchor(recorded) if recorded else current
        recorded["current"] = current
        BASELINE_PATH.write_text(
            json.dumps(recorded, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {BASELINE_PATH}")
        for key, value in current.items():
            print(f"  {key:16s} {value:.4f}s")
        return 0

    baseline = _anchor(json.loads(BASELINE_PATH.read_text()))
    budgets = {
        measure: args.budget if args.budget is not None else default_budget
        for measure, default_budget in BUDGETS.items()
    }

    def scores(sample: dict[str, float]) -> dict[str, float]:
        def value(measure: str) -> float:
            if measure in sample:
                return sample[measure]
            return sample[ANCHOR_KEY[measure]]

        return {
            measure: value(measure) / sample["calibration_s"]
            for measure in budgets
        }

    base = scores(baseline)
    now = scores(current)
    # A breach must survive re-measurement: a real regression reproduces,
    # a frequency-scaling or scheduler blip does not.  Keep each measure's
    # best score across attempts (the minimum is the least-noisy estimator,
    # exactly as within one section).
    for _ in range(2):
        if all(now[m] / base[m] <= budgets[m] for m in budgets):
            break
        retry = scores(collect())
        now = {m: min(now[m], retry[m]) for m in budgets}

    failed = False
    for measure, budget in budgets.items():
        ratio = now[measure] / base[measure]
        verdict = "ok" if ratio <= budget else "FAIL"
        failed = failed or ratio > budget
        print(f"{measure:16s} baseline {base[measure]:7.3f}  "
              f"now {now[measure]:7.3f}  "
              f"ratio {ratio:5.2f}  budget {budget:4.2f}  {verdict}")

    # The vector-kernel budget is a speedup *floor*, not an anchor ratio:
    # the pre-refactor tree had no kernels to anchor against.  Same
    # breach discipline as above — a real regression re-measures slow, a
    # scheduler blip does not.
    kernels = measure_table4_kernels()
    speedup = kernels["speedup"]
    if speedup < VECTOR_SPEEDUP_FLOOR:
        speedup = max(speedup, measure_table4_kernels()["speedup"])
    verdict = "ok" if speedup >= VECTOR_SPEEDUP_FLOOR else "FAIL"
    failed = failed or speedup < VECTOR_SPEEDUP_FLOOR
    print(f"{'table4_vector':16s} batched {kernels['batched_s']:7.3f}s "
          f"vector {kernels['vector_s']:7.3f}s  "
          f"speedup {speedup:5.2f}x  floor {VECTOR_SPEEDUP_FLOOR:4.2f}x  "
          f"{verdict}")

    # The fleet fast path carries the same kind of budget: a speedup
    # floor over the reference population path, re-measured on breach.
    fleet = measure_fleet_fast()
    fleet_speedup = fleet["speedup"]
    if fleet_speedup < FLEET_SPEEDUP_FLOOR:
        fleet_speedup = max(fleet_speedup, measure_fleet_fast()["speedup"])
    verdict = "ok" if fleet_speedup >= FLEET_SPEEDUP_FLOOR else "FAIL"
    failed = failed or fleet_speedup < FLEET_SPEEDUP_FLOOR
    print(f"{'fleet_fast':16s} reference {fleet['reference_s']:5.3f}s "
          f"fast {fleet['fast_s']:7.3f}s  "
          f"speedup {fleet_speedup:5.2f}x  floor {FLEET_SPEEDUP_FLOOR:4.2f}x  "
          f"{verdict}")
    if failed:
        print("perf guard FAILED: the request path exceeds its budget")
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
