"""Benchmark: extension X1 — FlashCache (flash card caching disk blocks)."""

from conftest import run_and_report


def test_bench_flashcache(benchmark):
    result = run_and_report(benchmark, "flashcache")
    table = result.tables[0]
    synth_rows = [row for row in table.rows if row[0] == "synth"]
    baseline = synth_rows[0][2]
    cached = synth_rows[-1][2]
    # On the reuse-heavy workload the hybrid saves real energy
    # (Marsh et al. report 20-40%).
    assert cached < baseline * 0.95
    # And the flash absorbs the read stream.
    assert synth_rows[-1][7] > 0.7