"""Benchmark: regenerate Figure 3 (card throughput vs cumulative writes)."""

from conftest import run_and_report


def test_bench_fig3(benchmark):
    result = run_and_report(benchmark, "fig3", scale=1.0)
    summary = result.table("first vs last")
    for configuration, first, last in summary.rows:
        assert last < first, f"{configuration}: throughput did not decline"
    firsts = {row[0]: row[1] for row in summary.rows}
    assert firsts["9.5 MB live"] <= firsts["1 MB live"]
