"""Benchmark: regenerate Figure 1 (MFFS write-latency anomaly)."""

from conftest import run_and_report


def test_bench_fig1(benchmark):
    result = run_and_report(benchmark, "fig1", scale=1.0)
    slopes = dict(
        zip(
            result.table("growth").column("curve"),
            result.table("growth").column("slope ms/MB"),
        )
    )
    # Only MFFS degrades with file size.
    assert slopes["intel compressed"] > 100.0
    assert abs(slopes["cu140 uncompressed"]) < 10.0
    assert abs(slopes["sdp10 uncompressed"]) < 10.0
