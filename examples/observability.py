"""Scenario: watch one simulation from the inside.

The experiment reports say what a run cost; the observability layer says
when and where inside the run.  This example attaches an
ObservabilitySession to simulations of the paper's mac workload on all
three storage alternatives, then:

* checks the agreement contract — the per-layer latency slices recorded
  in the trace sum to `SimulationResult.layer_breakdown` bit for bit;
* prints the event mix (requests, layer slices, spin-ups, cleaning
  stalls, background erases) and a few sampled metrics;
* writes `observability_trace.json` — open https://ui.perfetto.dev (or
  chrome://tracing) and load it: one process track per device, one named
  thread per layer — plus the metrics series as JSON and the final run
  in Prometheus text form.

Run:  python examples/observability.py
"""

from repro import SimulationConfig, simulate, workload_by_name
from repro.obs import ObservabilitySession, read_chrome_layer_totals

ALTERNATIVES = (
    ("magnetic disk", "cu140-datasheet"),
    ("flash disk", "sdp5a-datasheet"),
    ("flash card", "intel-datasheet"),
)


def main() -> None:
    trace = workload_by_name("mac").generate(seed=1, n_ops=6_000)
    print(f"workload: {len(trace)} ops over {trace.duration:.0f} s\n")

    session = ObservabilitySession(sample_interval_ops=64)
    for label, device in ALTERNATIVES:
        result = simulate(trace, SimulationConfig(device=device), obs=session)
        run = session.runs[-1]
        layers = ", ".join(
            f"{name} {value:.2f}s"
            for name, value in run["layer_latency_s"].items()
            if value
        )
        print(f"{label:>14s}: {layers}")
        print(f"{'':>14s}  trace/report agreement: max |diff| = "
              f"{run['agreement_max_abs_diff']:g}  "
              f"(energy {result.energy_j:.1f} J)")

    counts = session.tracer.counts()
    print(f"\nevent mix across {len(session.runs)} runs "
          f"({session.tracer.emitted} events):")
    for kind in sorted(counts, key=counts.get, reverse=True):
        print(f"  {kind:>10s} {counts[kind]:7d}")

    registry = session.registry  # holds the final (flash card) run
    resp = registry.get("response_time_s").sample()
    print(f"\nfinal run metrics: {registry.get('ops_total').sample():.0f} ops, "
          f"{resp['count']} response samples, "
          f"{len(registry.samples)} time-series rows")
    wear = registry.get("segment_wear_erases").sample()
    print(f"segment wear: {wear['count']:.0f} segments, "
          f"{wear['sum']:.0f} erases total")

    trace_path = session.tracer.write_chrome("observability_trace.json")
    metrics_path = registry.write_json("observability_metrics.json")
    prom_path = registry.write_prometheus("observability_metrics.prom")
    print(f"\nwrote {trace_path} — load it at https://ui.perfetto.dev")
    print(f"wrote {metrics_path} and {prom_path}")

    # The exported artifact agrees with the reports too, read back cold.
    per_run = read_chrome_layer_totals(trace_path)
    print(f"re-read from the trace file: {len(per_run)} runs, device layer "
          f"totals "
          + ", ".join(f"{run.get('device', 0.0):.2f}s" for run in per_run))


if __name__ == "__main__":
    main()
