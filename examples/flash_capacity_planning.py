"""Scenario: how much flash should you buy?

The paper's section 5.2/5.4 lesson: a flash card run near capacity burns
energy, time, and endurance on cleaning; spare capacity is cheap insurance.
This example sweeps storage utilization for a fixed dataset, prices each
configuration with 1994 dollars, and projects card lifetime.

Run:  python examples/flash_capacity_planning.py
"""

import math

from repro import SimulationConfig, simulate, workload_by_name
from repro.analysis.cost import flash_cost
from repro.analysis.endurance import endurance_report
from repro.traces.filemap import dataset_blocks
from repro.units import KB, MB

UTILIZATIONS = (0.95, 0.90, 0.80, 0.60, 0.40)
SEGMENT = 128 * KB


def main() -> None:
    trace = workload_by_name("dos").generate(seed=3, n_ops=8_000)
    dataset = dataset_blocks(trace) * trace.block_size
    print(f"dataset: {dataset / MB:.1f} MB of live data "
          f"({len(trace)} trace operations)\n")

    print(f"{'util':>5s} {'card MB':>8s} {'price $':>9s} {'energy J':>9s} "
          f"{'write ms':>9s} {'cleanings':>10s} {'lifetime h':>11s}")
    baseline = None
    for utilization in UTILIZATIONS:
        capacity = int(
            math.ceil(max(dataset / utilization, dataset + 3 * SEGMENT) / SEGMENT)
        ) * SEGMENT
        config = SimulationConfig(
            device="intel-datasheet",
            flash_capacity_bytes=capacity,
            flash_utilization=max(0.3, dataset / capacity),
        )
        result = simulate(trace, config)
        report = endurance_report(result)
        price = flash_cost(capacity).midpoint_dollars
        life = report.lifetime_hours
        life_text = "practically unlimited" if life == float("inf") else f"{life:,.0f}"
        if baseline is None:
            baseline = result.energy_j
        print(
            f"{dataset / capacity:5.0%} {capacity / MB:8.2f} {price:9.0f} "
            f"{result.energy_j:9.1f} {result.write_response.mean_ms:9.3f} "
            f"{result.device_stats['segments_cleaned']:10.0f} {life_text:>11s}"
        )

    print(
        "\nreading the table: the first spare megabytes buy most of the "
        "energy and endurance;\nbeyond ~60-80% utilization headroom, extra "
        "flash is mostly just extra dollars."
    )


if __name__ == "__main__":
    main()
