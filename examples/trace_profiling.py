"""Scenario: profile a workload before choosing storage for it.

Uses the trace-analysis toolkit to answer the questions the paper's results
turn on: how big is the working set (does DRAM caching pay off)?  how
concentrated are writes (can a flash cleaner find dead segments)?  how
bursty are arrivals (can a disk ever spin down)?

Run:  python examples/trace_profiling.py
"""

from repro import workload_by_name
from repro.traces.analysis import (
    burstiness,
    lru_hit_rate,
    sequentiality,
    working_set_curve,
    write_concentration,
)
from repro.units import KB, MB


def profile(name: str, n_ops: int) -> None:
    trace = workload_by_name(name).generate(seed=1, n_ops=n_ops)
    print(f"== {name}: {len(trace)} ops over {trace.duration / 3600:.1f} h")

    hit_2mb = lru_hit_rate(trace, 2 * MB // trace.block_size)
    print(f"  predicted LRU hit rate at 2 MB DRAM: {hit_2mb:.0%}"
          + ("  -> caching pays" if hit_2mb > 0.5 else "  -> caching barely helps"))

    writes = write_concentration(trace)
    if writes.write_block_events:
        print(f"  write traffic: each written block rewritten "
              f"{writes.rewrite_factor:.1f}x; 90% of writes land on "
              f"{writes.hot_fraction_for_90pct:.0%} of written blocks"
              + ("  -> cleaner-friendly" if writes.rewrite_factor > 3
                 else "  -> cleaner must work for its space"))

    gaps = burstiness(trace, long_gap_s=5.0)
    print(f"  gaps > 5 s cover {gaps.long_gap_time_fraction:.0%} of wall "
          f"time  -> a disk could sleep that fraction at best")

    print(f"  sequential continuation: {sequentiality(trace):.0%} of ops "
          f"(seek-free on a disk)")

    windows = working_set_curve(trace, window_s=trace.duration / 8 or 1.0)
    sizes = ", ".join(f"{point.distinct_kbytes / 1024:.1f}" for point in windows)
    print(f"  working set per eighth of the trace (MB): {sizes}\n")


def main() -> None:
    for name, ops in (("mac", 20_000), ("dos", 8_000), ("hp", 6_000)):
        profile(name, ops)
    print("rule of thumb from the paper: high hit rate + concentrated writes"
          "\n-> the flash card shines; low reuse + large transfers -> the"
          "\nflash disk's simplicity wins; long idle gaps are the only thing"
          "\nkeeping the magnetic disk in the race.")


if __name__ == "__main__":
    main()
