"""Scenario: re-run the paper's OmniBook micro-benchmarks.

Exercises the testbed model (DOS FS + DoubleSpace/Stacker + MFFS 2.00 over
the raw device models) the way section 3 of the paper does, including the
famous MFFS 2.00 anomaly: write latency that grows linearly with file size.

Run:  python examples/omnibook_microbench.py
"""

from repro.fs.compression import DataKind
from repro.testbed import OmniBook, StorageSetup
from repro.units import KB, MB


def main() -> None:
    omnibook = OmniBook()

    print("Table 1 style micro-benchmark (4 KB I/Os, KB/s):\n")
    print(f"{'setup':22s} {'op':6s} {'4KB files':>10s} {'1MB files':>10s}")
    for setup, kind in (
        (StorageSetup.CU140, DataKind.RANDOM),
        (StorageSetup.SDP10, DataKind.RANDOM),
        (StorageSetup.INTEL_MFFS, DataKind.TEXT),
    ):
        for operation in ("read", "write"):
            small = omnibook.run(setup, operation, 4 * KB, data_kind=kind)
            large = omnibook.run(setup, operation, 1 * MB, data_kind=kind)
            print(
                f"{setup.value:22s} {operation:6s} "
                f"{small.throughput_kbps:10.1f} {large.throughput_kbps:10.1f}"
            )

    print("\nThe MFFS 2.00 anomaly (Figure 1): 4 KB writes to a 1 MB file —")
    series = omnibook.write_latency_series(
        StorageSetup.INTEL_MFFS, data_kind=DataKind.TEXT
    )
    for cumulative_kb, latency_ms, throughput in series[::4]:
        bar = "#" * int(latency_ms / 5)
        print(f"  {cumulative_kb:6.0f} KB written: {latency_ms:7.1f} ms {bar}")
    print("\nlatency grows linearly with the file — 'apparently because "
          "data already written\nto the flash card are written again, even "
          "in the absence of cleaning'.")


if __name__ == "__main__":
    main()
