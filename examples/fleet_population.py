"""Fleet-scale device populations with ``repro.fleet``.

The paper measures three machines; a deployment has thousands.  This
example samples a heterogeneous fleet — per-device workload, storage
device, DRAM/SRAM size, spin-down threshold, and utilization, each drawn
from a seed derived only from ``(fleet seed, device index)`` — runs
every device through the simulator via the parallel engine, and
aggregates population distributions (exact p50/p90/p99 quantiles,
histograms) of energy, response time, and flash wear.

Because device identity never depends on sharding or worker count, the
population summary is byte-identical however the fleet is split: the
example proves it by running the same fleet as 1 shard and as 8 shards
and comparing the canonical JSON.

Run:  python examples/fleet_population.py
CLI equivalent:
      python -m repro fleet --devices 200 --seed 7 --scale 0.05 --json
"""

import tempfile
from pathlib import Path

from repro.engine import ResultCache
from repro.fleet import (
    FleetSpec,
    canonical_json,
    run_fleet,
    sample_devices,
    summary_table,
)

SPEC = FleetSpec(devices=200, seed=7, scale=0.05, ops_per_device=400)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    cache = ResultCache(workdir)

    # What the fleet looks like before any simulation runs.
    samples = sample_devices(SPEC)
    workloads = sorted({s.workload for s in samples})
    devices = sorted({s.device for s in samples})
    print(f"fleet: {SPEC.describe()}")
    print(f"  workloads: {', '.join(workloads)}")
    print(f"  device specs: {', '.join(devices)}\n")

    # Run it twice with different shardings; identical populations.
    serial = run_fleet(SPEC, jobs=1, shards=1, cache=cache)
    sharded = run_fleet(SPEC, jobs="auto", shards=8, cache=cache)
    assert serial.ok and sharded.ok
    identical = canonical_json(serial.summary) == canonical_json(sharded.summary)
    print(f"1 shard vs 8 shards byte-identical: {identical}\n")

    print(summary_table(sharded.summary).render())
    print("\npopulation head: energy p50/p90/p99 =",
          *(f"{sharded.summary['population']['metrics']['energy_j'][q]:.1f}"
            for q in ("p50", "p90", "p99")), "J")


if __name__ == "__main__":
    main()
