"""Quickstart: compare the three storage alternatives on a mobile workload.

Generates a PowerBook-style (``mac``) trace, simulates it against a
magnetic disk, a flash disk emulator, and a flash memory card, and prints
the paper's core comparison: energy, read response, write response.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, simulate, workload_by_name

DEVICES = {
    "magnetic disk (CU140)": "cu140-datasheet",
    "flash disk (SDP5)": "sdp5-datasheet",
    "flash card (Intel)": "intel-datasheet",
}


def main() -> None:
    # A 20k-operation slice of the mac workload (full scale is ~161k ops).
    trace = workload_by_name("mac").generate(seed=1, n_ops=20_000)
    print(f"workload: {trace.name}, {len(trace)} operations, "
          f"{trace.duration / 60:.0f} simulated minutes\n")

    print(f"{'device':24s} {'energy J':>10s} {'read ms':>9s} {'write ms':>9s} "
          f"{'max write ms':>13s}")
    baseline = None
    for label, device in DEVICES.items():
        result = simulate(trace, SimulationConfig(device=device))
        if baseline is None:
            baseline = result.energy_j
        saving = (1 - result.energy_j / baseline) * 100
        print(
            f"{label:24s} {result.energy_j:10.1f} "
            f"{result.read_response.mean_ms:9.3f} "
            f"{result.write_response.mean_ms:9.3f} "
            f"{result.write_response.max_ms:13.1f}"
            + (f"   ({saving:.0f}% energy saved)" if saving > 0 else "")
        )

    print(
        "\nThe paper's conclusion in one screen: flash cuts storage energy "
        "by an order of magnitude,\nreads get faster, writes get slower — "
        "and a disk survives only because it spins down."
    )


if __name__ == "__main__":
    main()
