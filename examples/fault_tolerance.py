"""Scenario: how does each storage alternative weather a bad day?

The paper's reliability claims are qualitative: battery-backed SRAM makes
buffered writes crash-safe (section 5.5), flash wears toward its endurance
limit (section 5.2), and a write-back cache risks "occasional data loss"
(section 4.2).  This example replays one workload through the magnetic
disk, the flash disk, and the flash card under a single deterministic
fault plan — 1% transient I/O errors, wear-scaled bad-block growth, and
two power losses — and compares what each alternative loses and what its
recovery costs.

Run:  python examples/fault_tolerance.py
"""

from repro import SimulationConfig, simulate
from repro.faults.plan import FaultPlan
from repro.traces.synthetic import SyntheticWorkload

ALTERNATIVES = (
    ("magnetic disk", "cu140-datasheet"),
    ("flash disk", "sdp5a-datasheet"),
    ("flash card", "intel-datasheet"),
)


def main() -> None:
    trace = SyntheticWorkload().generate(n_ops=8_000, seed=4)
    plan = FaultPlan(
        seed=11,
        transient_read_rate=0.01,
        transient_write_rate=0.01,
        bad_block_rate=0.002,
        power_loss_times=(0.4 * trace.duration, 0.8 * trace.duration),
    )
    print(f"workload: {len(trace)} ops over {trace.duration:.0f} s")
    print(
        f"fault plan: seed {plan.seed}, 1% transient errors, "
        f"bad-block rate {plan.bad_block_rate:g}, "
        f"{len(plan.power_loss_times)} power losses\n"
    )

    header = (
        f"{'alternative':>14s} {'retries':>8s} {'bad blocks':>11s} "
        f"{'torn':>5s} {'lost':>5s} {'replayed':>9s} {'recovery ms':>12s} "
        f"{'energy +%':>10s}"
    )
    print(header)
    for label, device in ALTERNATIVES:
        config = SimulationConfig(device=device)
        clean = simulate(trace, config)
        faulted = simulate(trace, config.with_options(fault_plan=plan))
        rel = faulted.reliability
        overhead = 100.0 * (faulted.energy_j / clean.energy_j - 1.0)
        print(
            f"{label:>14s} {rel.total_retries:8d} {rel.erase_failures:11d} "
            f"{rel.torn_writes:5d} {rel.lost_dirty_blocks:5d} "
            f"{rel.replayed_blocks:9d} {rel.recovery_time_s * 1e3:12.1f} "
            f"{overhead:10.2f}"
        )

    print(
        "\nthe same seed drives every run, so all three alternatives face "
        "the identical\nfault schedule; rerun the script and the numbers "
        "repeat bit for bit."
    )


if __name__ == "__main__":
    main()
