"""Scenario: will your flash card outlive your laptop?

The paper's section 2 warns that flash endures only ~100,000 erasures per
segment and that systems should "spread the load over the flash memory".
This example runs a hot-spot-heavy workload against the Intel card under
three cleaning regimes and projects card lifetime for each.

Run:  python examples/wear_leveling.py
"""

from repro import SimulationConfig, simulate
from repro.analysis.endurance import endurance_report
from repro.traces.synthetic import SyntheticWorkload
from repro.units import KB

POLICIES = ("greedy", "wear-aware", "cold-swap")


def main() -> None:
    # A deliberately skewed workload: 95% of accesses on 5% of the data.
    workload = SyntheticWorkload(
        hot_access_fraction=0.95, hot_data_fraction=0.05
    )
    trace = workload.generate(n_ops=12_000, seed=4)
    print(f"workload: {len(trace)} ops, 95% of traffic on 5% of 6 MB\n")

    print(f"{'policy':>11s} {'energy J':>9s} {'write ms':>9s} "
          f"{'max erase':>10s} {'mean erase':>11s} {'lifetime':>14s}")
    for policy in POLICIES:
        config = SimulationConfig(
            device="intel-datasheet",
            flash_utilization=0.9,
            cleaning_policy=policy,
            segment_bytes=64 * KB,
        )
        result = simulate(trace, config)
        report = endurance_report(result)
        life = report.lifetime_hours
        life_text = (
            "unbounded" if life == float("inf") else f"{life / 24:,.0f} days"
        )
        print(
            f"{policy:>11s} {result.energy_j:9.1f} "
            f"{result.write_response.mean_ms:9.3f} "
            f"{result.wear.max_erasures:10d} "
            f"{result.wear.mean_erasures:11.2f} {life_text:>14s}"
        )

    print(
        "\nleveling narrows the gap between the hottest segment and the "
        "average one —\nthe hottest segment is what dies first, so that gap "
        "is the card's lifetime."
    )


if __name__ == "__main__":
    main()
