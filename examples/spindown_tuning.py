"""Scenario: tuning a disk's spin-down timeout.

The paper fixes the threshold at 5 s, citing earlier studies; this example
shows the trade-off surface on your own workload mix — energy versus the
spin-up delays users feel — and compares the adaptive policy from
:mod:`repro.devices.spindown`.

Run:  python examples/spindown_tuning.py
"""

from repro import SimulationConfig, Simulator, workload_by_name
from repro.core.hierarchy import build_hierarchy
from repro.devices.spindown import AdaptiveTimeoutPolicy
from repro.traces.filemap import FileMapper

THRESHOLDS = (1.0, 2.0, 5.0, 10.0, 30.0, None)


def simulate_adaptive(trace):
    """Run the CU140 under the adaptive spin-down policy."""
    config = SimulationConfig(device="cu140-datasheet")
    mapper = FileMapper(trace.block_size)
    ops = mapper.translate_all(trace)
    hierarchy = build_hierarchy(config, trace.block_size, mapper.high_water_blocks)
    hierarchy.device.policy = AdaptiveTimeoutPolicy(initial_s=5.0)
    simulator = Simulator(config)
    return simulator._execute(trace, ops, hierarchy)


def main() -> None:
    trace = workload_by_name("mac").generate(seed=11, n_ops=40_000)
    print(f"workload: {len(trace)} ops over {trace.duration / 3600:.1f} h\n")

    print(f"{'policy':>12s} {'energy J':>9s} {'read ms':>8s} "
          f"{'read max ms':>12s} {'spin-ups':>9s}")
    for threshold in THRESHOLDS:
        config = SimulationConfig(
            device="cu140-datasheet", spin_down_timeout_s=threshold
        )
        result = Simulator(config).run(trace)
        label = "never" if threshold is None else f"{threshold:g}s fixed"
        print(
            f"{label:>12s} {result.energy_j:9.1f} "
            f"{result.read_response.mean_ms:8.3f} "
            f"{result.read_response.max_ms:12.1f} "
            f"{result.device_stats['spin_ups']:9.0f}"
        )

    adaptive = simulate_adaptive(trace)
    print(
        f"{'adaptive':>12s} {adaptive.energy_j:9.1f} "
        f"{adaptive.read_response.mean_ms:8.3f} "
        f"{adaptive.read_response.max_ms:12.1f} "
        f"{adaptive.device_stats['spin_ups']:9.0f}"
    )

    print(
        "\nshort timeouts trade user-visible spin-up stalls for idle "
        "watts; the paper's 5 s default sits near the knee."
    )


if __name__ == "__main__":
    main()
