"""Parallel, cache-aware experiment runs with ``repro.engine``.

Sweeps the device-comparison experiment (Table 4) across several trace
seeds — the robustness check that a conclusion is not an artifact of one
random draw — fanning the (experiment x seed) units out over worker
processes, memoising every result in an on-disk cache, and recording a
JSONL run manifest.  Run it twice: the second pass is pure cache replay.

Run:  python examples/parallel_sweep.py
CLI equivalent:
      python -m repro run table4 headline --scale 0.1 \
          --seed 1 --seed 2 --seed 3 --jobs 4
"""

import tempfile
from pathlib import Path

from repro.engine import (
    ResultCache,
    RunManifest,
    TraceStore,
    decompose,
    execute,
    read_manifest,
    summarize,
)

SCALE = 0.1
SEEDS = (1, 2, 3)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    cache = ResultCache(workdir)
    store = TraceStore(workdir)
    manifest_path = workdir / "manifest.jsonl"

    units = decompose(["table4", "headline"], scale=SCALE, seeds=SEEDS)
    print(f"{len(units)} work units "
          f"({len(SEEDS)} seeds x 2 experiments), cache at {workdir}\n")

    for attempt in ("cold cache", "warm cache"):
        with RunManifest(manifest_path) as manifest:
            outcomes = execute(
                units, jobs=4, cache=cache, trace_store=store, manifest=manifest
            )
        counts = summarize(outcomes)
        print(f"{attempt:10s}: {counts['ok']} ok, {counts['hits']} hits, "
              f"{counts['misses']} misses, {counts['wall_s']:.2f}s of work")

    # Per-seed stability of the headline claim: the flash card's energy
    # advantage over the spun-down disk, straight from the cached results.
    print("\nmac-trace card-vs-disk energy ratio per seed:")
    for outcome in outcomes:
        if outcome.unit.experiment_id != "table4":
            continue
        table = outcome.result.table("Table 4 (mac)")
        disk = table.lookup("cu140-datasheet", "energy J")
        card = table.lookup("intel-datasheet", "energy J")
        print(f"  seed {outcome.unit.seed}: {disk / card:.1f}x "
              f"(disk {disk:.0f} J, card {card:.0f} J)")

    records = read_manifest(manifest_path)
    units_logged = [r for r in records if r["record"] == "unit"]
    print(f"\nmanifest: {manifest_path} "
          f"({len(units_logged)} unit records across both passes)")


if __name__ == "__main__":
    main()
