"""Scenario: how long does the battery last through a workday?

Simulates the paper's three storage alternatives under the ``mac``
workload (a PowerBook user's file activity) and projects battery-life
extension with the paper's system-energy accounting: storage is 20-54% of
total system energy, so storage savings stretch the whole battery.

Run:  python examples/mobile_workday.py
"""

from repro import SimulationConfig, simulate, workload_by_name
from repro.analysis.battery import BatteryModel, battery_extension

DEVICES = {
    "magnetic disk (CU140)": "cu140-datasheet",
    "flash disk (SDP5)": "sdp5-datasheet",
    "flash card (Intel)": "intel-datasheet",
}


def main() -> None:
    trace = workload_by_name("mac").generate(seed=7, n_ops=40_000)
    hours = trace.duration / 3600
    print(f"simulating {hours:.1f} hours of PowerBook file activity "
          f"({len(trace)} operations)\n")

    results = {
        label: simulate(trace, SimulationConfig(device=device))
        for label, device in DEVICES.items()
    }
    disk = results["magnetic disk (CU140)"]

    print(f"{'device':24s} {'storage J':>10s} {'avg W':>7s} "
          f"{'battery +% (20%)':>17s} {'battery +% (54%)':>17s}")
    for label, result in results.items():
        avg_w = result.energy_j / result.duration_s
        if result is disk:
            ext20 = ext54 = 0.0
        else:
            ext20 = battery_extension(disk, result, storage_share=0.20) * 100
            ext54 = battery_extension(disk, result, storage_share=0.54) * 100
        print(f"{label:24s} {result.energy_j:10.1f} {avg_w:7.3f} "
              f"{ext20:16.0f}% {ext54:16.0f}%")

    # The abstract's 22% headline: flash card at a 20% storage share.
    card = results["flash card (Intel)"]
    headline = battery_extension(disk, card, storage_share=0.20) * 100
    print(f"\nheadline: replacing the disk with the flash card extends "
          f"battery life by ~{headline:.0f}%")
    model = BatteryModel(storage_share=0.54)
    print(f"at the 54% share the paper also cites, the same swap gives "
          f"+{model.life_extension(card.energy_j / disk.energy_j) * 100:.0f}% "
          f"(\"can as much as double battery lifetime\")")


if __name__ == "__main__":
    main()
